(* Batched verification service.

   Consumes a stream of (family, instance parameters, seed) verification
   requests and answers them at maximum throughput: instance construction
   (graph generation, witness extraction) is amortized across requests
   sharing a topology via a content-addressed prepared-instance cache,
   honest-prover executions are memoized through Label_cache, and batches
   fan out over the Domain pool.

   Determinism contract: the response log (and its digest) is a pure
   function of the request stream — identical for every DIPP_JOBS value,
   with the caches on or off, and for either label codec.  Only latencies
   and the throughput summary are timing-dependent, and those never enter
   the log.  Pooled workers therefore never print and only touch shared
   state through the two mutex-guarded caches. *)

module Gen = Dipp_gen.Gen
module Pool = Dipp_engine.Pool
module Trace = Dipp_trace.Trace
module Label_cache = Dipp_trace.Label_cache

type request = {
  family : string;
  n : int;  (* size parameter, interpreted per family *)
  gseed : int;  (* instance generator seed *)
  seed : int;  (* verification run seed *)
  budget : int;  (* max per-node label bits the client accepts *)
}

type response = {
  index : int;
  req : request;
  accepted : bool;
  nodes : int;  (* actual node count of the prepared instance *)
  max_bits : int;
  proof_bits : int;
}

type outcome = { response : response; latency_s : float }

(* ---- families --------------------------------------------------------- *)

type prepared = {
  instance_key : string;  (* content address of the constructed instance *)
  nodes : int;
  exec : codec:Bits_flat.codec -> seed:int -> Dip.verdict * Dip.stats;
}

type family = {
  name : string;
  bounds_row : string;  (* row id in the Bounds registry *)
  min_n : int;
  prepare : n:int -> gseed:int -> prepared;
}

let content_key ~name ~n ~gseed ~digest =
  Sha256.hex
    (String.concat "\x00" [ name; string_of_int n; string_of_int gseed; digest ])

(* Size parameters feed the generators the same way the trace registry's
   pinned entries do; block-built families scale their block count with n
   so a request's n stays the one knob for instance size. *)
let blocks_of_n n = max 1 (n / 8)

let lr_family =
  {
    name = "lr";
    bounds_row = "lr_sorting";
    min_n = 4;
    prepare =
      (fun ~n ~gseed ->
        let path, arcs = Gen.lr_yes ~n gseed in
        let inst = { Lr_sorting.n; path; arcs } in
        {
          instance_key = content_key ~name:"lr" ~n ~gseed ~digest:(Label_cache.lr_key inst);
          nodes = n;
          exec =
            (fun ~codec ~seed ->
              let r = Lr_sorting.run ~seed ~codec ~prover:Lr_sorting.Honest inst in
              (r.Lr_sorting.verdict, r.Lr_sorting.stats));
        })
  }

let po_family =
  {
    name = "path_outerplanarity";
    bounds_row = "path_outerplanarity";
    min_n = 4;
    prepare =
      (fun ~n ~gseed ->
        let g, w = Gen.path_outerplanar ~n gseed in
        {
          instance_key =
            content_key ~name:"path_outerplanarity" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Path_outerplanarity.run ~seed ~codec ~prover:Path_outerplanarity.Honest
                  { Path_outerplanarity.graph = g; witness = Some w }
              in
              (r.Path_outerplanarity.verdict, r.Path_outerplanarity.stats));
        })
  }

let outerplanarity_family =
  {
    name = "outerplanarity";
    bounds_row = "outerplanarity";
    min_n = 8;
    prepare =
      (fun ~n ~gseed ->
        let g = Gen.outerplanar ~blocks:(blocks_of_n n) gseed in
        {
          instance_key =
            content_key ~name:"outerplanarity" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Outerplanarity.run ~seed ~codec ~prover:Outerplanarity.Honest
                  { Outerplanarity.graph = g }
              in
              (r.Outerplanarity.verdict, r.Outerplanarity.stats));
        })
  }

let planar_embedding_family =
  {
    name = "planar_embedding";
    bounds_row = "planar_embedding";
    min_n = 4;
    prepare =
      (fun ~n ~gseed ->
        let g = Gen.planar ~n gseed in
        let rot =
          match Gen.embedding g with
          | Some rot -> rot
          | None -> invalid_arg "Serve: planar instance has no embedding"
        in
        {
          instance_key =
            content_key ~name:"planar_embedding" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Planar_embedding.run ~seed ~codec ~prover:Planar_embedding.Honest
                  { Planar_embedding.graph = g; rot }
              in
              (r.Planar_embedding.verdict, r.Planar_embedding.stats));
        })
  }

let planarity_family =
  {
    name = "planarity";
    bounds_row = "planarity";
    min_n = 4;
    prepare =
      (fun ~n ~gseed ->
        let g = Gen.planar ~n gseed in
        {
          instance_key = content_key ~name:"planarity" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Planarity.run ~seed ~codec ~prover:Planarity.Honest { Planarity.graph = g }
              in
              (r.Planarity.verdict, r.Planarity.stats));
        })
  }

let series_parallel_family =
  {
    name = "series_parallel";
    bounds_row = "series_parallel_dip";
    min_n = 4;
    prepare =
      (fun ~n ~gseed ->
        let tr, g = Gen.series_parallel ~size:n gseed in
        let ears = Series_parallel.ears_of_sp tr in
        {
          instance_key =
            content_key ~name:"series_parallel" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Series_parallel_dip.run ~seed ~codec ~prover:Series_parallel_dip.Honest
                  { Series_parallel_dip.graph = g; ears = Some ears }
              in
              (r.Series_parallel_dip.verdict, r.Series_parallel_dip.stats));
        })
  }

let treewidth2_family =
  {
    name = "treewidth2";
    bounds_row = "treewidth2_dip";
    min_n = 8;
    prepare =
      (fun ~n ~gseed ->
        let g = Gen.treewidth2 ~blocks:(blocks_of_n n) gseed in
        {
          instance_key = content_key ~name:"treewidth2" ~n ~gseed ~digest:(Trace.graph_digest g);
          nodes = Graph.n g;
          exec =
            (fun ~codec ~seed ->
              let r =
                Treewidth2_dip.run ~seed ~codec ~prover:Treewidth2_dip.Honest
                  { Treewidth2_dip.graph = g }
              in
              (r.Treewidth2_dip.verdict, r.Treewidth2_dip.stats));
        })
  }

(* List order fixes the binary-format family ids; append only. *)
let families =
  [
    lr_family;
    po_family;
    outerplanarity_family;
    planar_embedding_family;
    planarity_family;
    series_parallel_family;
    treewidth2_family;
  ]

let family_names = List.map (fun f -> f.name) families

let find_family name = List.find_opt (fun f -> String.equal f.name name) families

let family_id name =
  let rec go i = function
    | [] -> None
    | f :: tl -> if String.equal f.name name then Some i else go (i + 1) tl
  in
  go 0 families

(* ---- request validation ----------------------------------------------- *)

let max_request_n = 100_000

(* Conservative degree bound: the envelope is monotone in delta, so any
   honest instance of the family at size n fits under it. *)
let envelope_of fam ~n =
  match Bounds.find fam.bounds_row with
  | Some row -> Some (Bounds.envelope row ~n ~delta:(max 2 (n - 1)))
  | None -> None

let validate_request r =
  match find_family r.family with
  | None -> Error (Printf.sprintf "unknown family %S" r.family)
  | Some fam ->
      if r.n < fam.min_n || r.n > max_request_n then
        Error (Printf.sprintf "family %s: n=%d outside [%d, %d]" fam.name r.n fam.min_n max_request_n)
      else if r.gseed < 0 then Error (Printf.sprintf "negative gseed %d" r.gseed)
      else if r.seed < 0 then Error (Printf.sprintf "negative seed %d" r.seed)
      else if r.budget < 1 then Error (Printf.sprintf "non-positive label budget %d" r.budget)
      else (
        match envelope_of fam ~n:r.n with
        | Some env when r.budget > env ->
            Error
              (Printf.sprintf
                 "family %s: label budget %d bits exceeds the registry envelope %d bits at n=%d"
                 fam.name r.budget env r.n)
        | _ -> Ok fam)

(* ---- request stream codec --------------------------------------------- *)

let magic = "DIPP-SERVE 1\n"
let frame_bytes = 17 (* u8 family id + 4 x u32be *)

let requests_to_text reqs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# family n gseed seed budget\n";
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d %d %d\n" r.family r.n r.gseed r.seed r.budget))
    reqs;
  Buffer.contents buf

let requests_to_binary reqs =
  let buf = Buffer.create (String.length magic + (Array.length reqs * frame_bytes)) in
  Buffer.add_string buf magic;
  Array.iter
    (fun r ->
      let id = match family_id r.family with Some i -> i | None -> 255 in
      Buffer.add_uint8 buf id;
      Buffer.add_int32_be buf (Int32.of_int r.n);
      Buffer.add_int32_be buf (Int32.of_int r.gseed);
      Buffer.add_int32_be buf (Int32.of_int r.seed);
      Buffer.add_int32_be buf (Int32.of_int r.budget))
    reqs;
  Buffer.contents buf

let parse_text s =
  let lines = String.split_on_char '\n' s in
  (* explicit CRLF handling: a stream written on (or piped through) a
     Windows toolchain ends every line in "\r\n"; splitting on '\n' alone
     leaves the '\r' glued to the last field, so chop it before parsing *)
  let strip_cr line =
    let len = String.length line in
    if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line
  in
  let parse_line lineno line acc =
    let line = String.trim (strip_cr line) in
    if String.length line = 0 || line.[0] = '#' then Ok acc
    else
      match String.split_on_char ' ' line |> List.filter (fun t -> String.length t > 0) with
      | [ family; n; gseed; seed; budget ] -> (
          match
            (int_of_string_opt n, int_of_string_opt gseed, int_of_string_opt seed,
             int_of_string_opt budget)
          with
          | Some n, Some gseed, Some seed, Some budget ->
              Ok ({ family; n; gseed; seed; budget } :: acc)
          | _ -> Error (Printf.sprintf "request line %d: malformed integer field" lineno))
      | _ -> Error (Printf.sprintf "request line %d: expected `family n gseed seed budget'" lineno)
  in
  let rec go lineno acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: tl -> (
        match parse_line lineno line acc with Ok acc -> go (lineno + 1) acc tl | Error e -> Error e)
  in
  go 1 [] lines

let parse_binary s =
  let body_len = String.length s - String.length magic in
  if body_len mod frame_bytes <> 0 then
    Error
      (Printf.sprintf "truncated binary request stream: %d stray byte(s) after %d frame(s)"
         (body_len mod frame_bytes) (body_len / frame_bytes))
  else begin
    let count = body_len / frame_bytes in
    let u32 off = Int32.to_int (String.get_int32_be s off) in
    let rec go i acc =
      if i = count then Ok (Array.of_list (List.rev acc))
      else begin
        let off = String.length magic + (i * frame_bytes) in
        let id = Char.code s.[off] in
        match List.nth_opt families id with
        | None -> Error (Printf.sprintf "request frame %d: unknown family id %d" i id)
        | Some fam ->
            let r =
              {
                family = fam.name;
                n = u32 (off + 1);
                gseed = u32 (off + 5);
                seed = u32 (off + 9);
                budget = u32 (off + 13);
              }
            in
            go (i + 1) (r :: acc)
      end
    in
    go 0 []
  end

let parse_requests s =
  let is_binary =
    String.length s >= String.length magic && String.equal (String.sub s 0 (String.length magic)) magic
  in
  if is_binary then parse_binary s else parse_text s

(* ---- prepared-instance cache ------------------------------------------ *)

(* Content-addressed, bounded-residency memo of constructed instances.
   Same discipline as Label_cache: one mutex guards the tables, one atomic
   carries the lookup total, and every reported counter is a pure function
   of the work set (never of the domain schedule).

   Eviction keeps the [pc_capacity] smallest keys by byte order.  Unlike
   FIFO/LRU, that resident set is schedule-independent: inserting a key and
   discarding the largest commutes, so any interleaving of the same lookups
   converges to the same table.

   The state and its accessors live at the top level (not inside the
   [Prepared_cache] namespace below) so dipp-race inventories them and
   proves the locking discipline; the analyzer only scans top-level
   bindings. *)

let pc_default_capacity = 64
let pc_table : (string, prepared) Hashtbl.t = Hashtbl.create 64
let pc_lock = Mutex.create ()
let pc_lookups = Atomic.make 0
let pc_capacity = Atomic.make pc_default_capacity

(* distinct keys ever prepared; never evicted, so the derived counters stay
   monotone under eviction *)
let pc_seen : (string, unit) Hashtbl.t = Hashtbl.create 64
let pc_set_capacity c = Atomic.set pc_capacity (max 1 c)

let pc_find_or_prepare ~key f =
  Atomic.incr pc_lookups;
  Mutex.lock pc_lock;
  let cached = Hashtbl.find_opt pc_table key in
  Mutex.unlock pc_lock;
  match cached with
  | Some p -> p
  | None ->
      let p = f () in
      Mutex.lock pc_lock;
      (* racing domains may both prepare the same instance; both built the
         same pure value, so either write is fine *)
      Hashtbl.replace pc_seen key ();
      Hashtbl.replace pc_table key p;
      (* evict down to capacity, largest key first (inlined here so the
         whole table access pattern sits under one lock scope) *)
      let cap = Atomic.get pc_capacity in
      while Hashtbl.length pc_table > cap do
        let worst =
          Hashtbl.fold
            (fun k _ acc ->
              match acc with
              | None -> Some k
              | Some k' -> if String.compare k k' > 0 then Some k else Some k')
            pc_table None
        in
        match worst with Some k -> Hashtbl.remove pc_table k | None -> ()
      done;
      Mutex.unlock pc_lock;
      p

let pc_stats () =
  Mutex.lock pc_lock;
  let distinct = Hashtbl.length pc_seen and resident = Hashtbl.length pc_table in
  Mutex.unlock pc_lock;
  (Atomic.get pc_lookups, distinct, resident, Atomic.get pc_capacity)

let pc_reset () =
  Mutex.lock pc_lock;
  Hashtbl.reset pc_table;
  Hashtbl.reset pc_seen;
  Mutex.unlock pc_lock;
  Atomic.set pc_lookups 0;
  Atomic.set pc_capacity pc_default_capacity

module Prepared_cache = struct
  let set_capacity = pc_set_capacity
  let find_or_prepare = pc_find_or_prepare
  let stats = pc_stats
  let reset = pc_reset

  let report () =
    let lookups, distinct, resident, capacity = stats () in
    Printf.sprintf
      "prepared-cache: %d lookup(s), %d distinct topolog%s, %d resident (capacity %d)" lookups
      distinct
      (if distinct = 1 then "y" else "ies")
      resident capacity
end

(* ---- execution --------------------------------------------------------- *)

exception Bad_request of string

let answer ~codec index r =
  match validate_request r with
  | Error e -> raise (Bad_request (Printf.sprintf "request %d: %s" index e))
  | Ok fam ->
      let pkey = content_key ~name:fam.name ~n:r.n ~gseed:r.gseed ~digest:"prepared" in
      let prep = Prepared_cache.find_or_prepare ~key:pkey (fun () -> fam.prepare ~n:r.n ~gseed:r.gseed) in
      let lkey =
        Label_cache.key ~protocol:("serve|" ^ fam.name) ~instance:prep.instance_key ~seed:r.seed
      in
      let verdict, stats =
        Label_cache.find_or_run ~key:lkey (fun () -> prep.exec ~codec ~seed:r.seed)
      in
      let max_bits = stats.Dip.max_node_total_bits in
      {
        index;
        req = r;
        accepted = verdict.Dip.accepted && max_bits <= r.budget;
        nodes = prep.nodes;
        max_bits;
        proof_bits = stats.Dip.proof_size_bits;
      }

(* Validation runs up front, before any pooled work: a malformed request
   fails the whole batch with [Bad_request] (exit code 2 at the CLI) and
   never reaches — let alone wedges — a worker domain. *)
let validate_batch reqs =
  Array.iteri
    (fun i r ->
      match validate_request r with
      | Ok _ -> ()
      | Error e -> raise (Bad_request (Printf.sprintf "request %d: %s" i e)))
    reqs

(* Unix.gettimeofday is wall-clock time: an NTP slew or step between the
   two reads can make the delta negative.  The stdlib ships no monotonic
   clock (Mtime is not vendored), so clamp at zero — a latency is never
   negative. *)
let monotonic_latency ~t0 ~t1 = if t1 > t0 then t1 -. t0 else 0.

let execute ?jobs ?(codec = Bits_flat.Checked) reqs =
  validate_batch reqs;
  Pool.run ?jobs (Array.length reqs) (fun i ->
      let t0 = Unix.gettimeofday () in
      let response = answer ~codec i reqs.(i) in
      { response; latency_s = monotonic_latency ~t0 ~t1:(Unix.gettimeofday ()) })

(* ---- response log ------------------------------------------------------ *)

let response_line r =
  Printf.sprintf "#%d %s n=%d g=%d s=%d b=%d %s nodes=%d max_bits=%d proof_bits=%d" r.index
    r.req.family r.req.n r.req.gseed r.req.seed r.req.budget
    (if r.accepted then "ACCEPT" else "REJECT")
    r.nodes r.max_bits r.proof_bits

(* Pool.run returns results in request order, so the log is already
   order-normalized regardless of the domain schedule. *)
let response_log outcomes =
  Array.map (fun o -> response_line o.response) outcomes

let log_digest lines = Sha256.hex (String.concat "\n" (Array.to_list lines))

(* Nearest-rank percentile, computed entirely in integer arithmetic:
   rank = ceil(pct * n / 100) for pct in [1, 100].  The previous float
   formulation (int_of_float (ceil (q *. float n)) - 1) was fragile —
   0.99 *. 100. evaluates to 99.00000000000001, whose ceiling lands on
   index 99 instead of the nearest-rank index 98. *)
let percentile sorted ~pct =
  let n = Array.length sorted in
  if n = 0 || pct < 1 || pct > 100 then None
  else begin
    let rank = ((pct * n) + 99) / 100 in
    Some sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let latency_percentiles outcomes =
  let lat = Array.map (fun o -> o.latency_s) outcomes in
  Array.sort Float.compare lat;
  match (percentile lat ~pct:50, percentile lat ~pct:99) with
  | Some p50, Some p99 -> Some (p50, p99)
  | _ -> None
