(** Batched verification service.

    Consumes a stream of (family, instance parameters, seed) verification
    requests and answers at maximum throughput: instance construction is
    amortized across requests sharing a topology via a content-addressed
    {!Prepared_cache}, honest-prover executions are memoized through
    {!Label_cache}, and batches fan out over the Domain pool.

    Determinism contract: the response log and its digest are pure
    functions of the request stream — identical for every [DIPP_JOBS]
    value, with the caches on or off, and for either label codec.  Only
    latencies and throughput are timing-dependent, and they never enter
    the log. *)

type request = {
  family : string;  (** one of {!family_names} *)
  n : int;  (** size parameter, interpreted per family *)
  gseed : int;  (** instance generator seed *)
  seed : int;  (** verification run seed *)
  budget : int;  (** max per-node label bits the client accepts *)
}

type response = {
  index : int;  (** position in the request stream *)
  req : request;
  accepted : bool;  (** verdict accepted and max label within [budget] *)
  nodes : int;  (** actual node count of the prepared instance *)
  max_bits : int;
  proof_bits : int;
}

type outcome = { response : response; latency_s : float }

val family_names : string list
(** The seven protocol families, in binary-id order. *)

val max_request_n : int

(* ---- request stream codec -------------------------------------------- *)

val magic : string
(** First bytes of the binary stream format, ["DIPP-SERVE 1\n"]. *)

val requests_to_text : request array -> string
(** One request per line: [family n gseed seed budget]; [#] comments and
    blank lines are ignored on parse. *)

val requests_to_binary : request array -> string
(** [magic] then 17-byte frames: u8 family id, u32be n/gseed/seed/budget. *)

val parse_requests : string -> (request array, string) Stdlib.result
(** Sniffs the format by {!magic} and parses.  [Error] reports the first
    malformed line or frame (truncation, unknown family id, bad field). *)

(* ---- prepared-instance cache ------------------------------------------ *)

module Prepared_cache : sig
  val set_capacity : int -> unit
  (** Bound the resident instance count (clamped to >= 1).  Eviction keeps
      the smallest keys by byte order — a schedule-independent resident
      set, unlike FIFO/LRU. *)

  val stats : unit -> int * int * int * int
  (** [(lookups, distinct, resident, capacity)].  All four are pure
      functions of the work set, never of the domain schedule. *)

  val reset : unit -> unit
  (** Empty the cache, zero the counters, restore the default capacity. *)

  val report : unit -> string
end

(* ---- execution --------------------------------------------------------- *)

exception Bad_request of string
(** A malformed request: unknown family, size or seed out of range, or a
    label budget beyond the family's registry envelope.  Raised by
    {!execute} before any pooled work starts (exit code 2 at the CLI). *)

val execute : ?jobs:int -> ?codec:Bits_flat.codec -> request array -> outcome array
(** Answers every request, in request order.  Raises {!Bad_request} if any
    request fails validation — checked up front so a bad request never
    reaches a worker domain. *)

(* ---- response log ------------------------------------------------------ *)

val response_line : response -> string

val response_log : outcome array -> string array
(** One line per request, in request order (already order-normalized). *)

val log_digest : string array -> string
(** SHA-256 over the newline-joined log. *)

val monotonic_latency : t0:float -> t1:float -> float
(** [t1 -. t0] clamped at 0: wall-clock reads can go backwards under an
    NTP slew or step, and a latency is never negative. *)

val percentile : float array -> pct:int -> float option
(** Nearest-rank percentile of a sorted array, [pct] in [1, 100]; integer
    rank arithmetic throughout.  [None] on an empty array or a [pct] out
    of range. *)

val latency_percentiles : outcome array -> (float * float) option
(** [(p50, p99)] in seconds; [None] on an empty outcome array. *)
