(** Plain-text graph exchange.

    Edge-list format: one edge per line as two whitespace-separated node
    ids; blank lines and [#] comments ignored; an optional leading line
    [n <count>] pins the node count (otherwise 1 + max id).  DOT output is
    provided for visual inspection of instances and counterexamples. *)

val parse_edge_list : string -> Graph.t
(** Raises [Invalid_argument] with a 1-based line-numbered message on any
    malformed input: a non-numeric or negative endpoint, a line with a
    field count other than two, a self-loop, a bad [n] directive, or a
    node id out of range of a pinned [n]. *)

val to_edge_list : Graph.t -> string
(** Canonical form: [n <count>] first, then edges sorted ascending — the
    transcript subsystem hashes this text as the graph digest. *)

val read_file : string -> Graph.t
(** {!parse_edge_list} on the file contents; parse errors are re-raised
    with the path prepended to the line-numbered message. *)

val write_file : string -> Graph.t -> unit

val to_dot : ?name:string -> ?highlight:Graph.edge list -> Graph.t -> string
(** Undirected DOT; [highlight] edges are drawn bold red (used for
    counterexample edges, e.g. the Theorem 1.8 fooling arc). *)

val rotation_to_dot : Rotation.t -> string
(** DOT with rotation orders recorded as edge port annotations. *)
