(* Every rejection of malformed input carries the 1-based line number; the
   range check against a pinned [n] runs after the whole text is scanned, so
   it too can name the offending line instead of letting [Graph.create]'s
   positionless exception escape. *)
let parse_edge_list text =
  let lines = String.split_on_char '\n' text in
  let edges = ref [] in
  (* (lineno, u, v), reversed *)
  let pinned_n = ref None in
  let max_id = ref (-1) in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
      let parts = List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)) in
      let node_id tok =
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some v -> invalid_arg (Printf.sprintf "Graph_io: line %d: negative node id %d" lineno v)
        | None -> invalid_arg (Printf.sprintf "Graph_io: line %d: expected a node id, got %S" lineno tok)
      in
      match parts with
      | [] -> ()
      | [ "n"; count ] -> (
          match int_of_string_opt count with
          | Some c when c >= 0 -> pinned_n := Some c
          | _ -> invalid_arg (Printf.sprintf "Graph_io: line %d: bad node count %S" lineno count))
      | [ a; b ] ->
          let u = node_id a and v = node_id b in
          if u = v then invalid_arg (Printf.sprintf "Graph_io: line %d: self-loop %d %d" lineno u v);
          max_id := max !max_id (max u v);
          edges := (lineno, u, v) :: !edges
      | parts ->
          invalid_arg
            (Printf.sprintf "Graph_io: line %d: expected 'u v', got %d fields" lineno
               (List.length parts)))
    lines;
  let n = match !pinned_n with Some c -> c | None -> !max_id + 1 in
  let edges = List.rev !edges in
  List.iter
    (fun (lineno, u, v) ->
      if u >= n || v >= n then
        invalid_arg
          (Printf.sprintf "Graph_io: line %d: node id %d out of range (n = %d)" lineno (max u v) n))
    edges;
  Graph.create ~n (List.map (fun (_, u, v) -> (u, v)) edges)

let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse_edge_list text
  with Invalid_argument msg -> invalid_arg (Printf.sprintf "%s: %s" path msg)

let write_file path g =
  let oc = open_out path in
  output_string oc (to_edge_list g);
  close_out oc

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges
    (fun (u, v) ->
      let attr = if List.mem (u, v) highlight then " [color=red, penwidth=2]" else "" in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attr))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rotation_to_dot rot =
  let g = rot.Rotation.graph in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph embedding {\n  node [shape=circle];\n";
  for v = 0 to Graph.n g - 1 do
    let order = String.concat "," (List.map string_of_int (Array.to_list rot.Rotation.rot.(v))) in
    Buffer.add_string buf (Printf.sprintf "  %d [xlabel=\"(%s)\"];\n" v order)
  done;
  Graph.iter_edges (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
