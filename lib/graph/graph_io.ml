(* Every rejection of malformed input carries the 1-based line number; the
   range check against a pinned [n] runs after the whole text is scanned, so
   it too can name the offending line instead of letting [Graph.create]'s
   positionless exception escape.

   Input is consumed one line at a time (a file is never slurped into a
   string) and edges accumulate in flat growable int arrays — line number,
   u, v in parallel — so the scan feeds {!Graph.of_edge_array}'s two-pass
   CSR build with no intermediate per-node or per-edge list.  At 10^6
   nodes / 3*10^6 edges the whole parse is three int vectors plus the
   final adjacency. *)

(* growable int vector *)
type ivec = { mutable a : int array; mutable len : int }

let ivec_create () = { a = Array.make 1024 0; len = 0 }

let ivec_push t x =
  if t.len = Array.length t.a then begin
    let a' = Array.make (2 * t.len) 0 in
    Array.blit t.a 0 a' 0 t.len;
    t.a <- a'
  end;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

(* [next_line ()] yields lines without their terminating '\n' (any '\r'
   stays attached, exactly like the historical split-on-'\n' scan). *)
let parse_stream next_line =
  let lin = ivec_create () and us = ivec_create () and vs = ivec_create () in
  let pinned_n = ref None in
  let max_id = ref (-1) in
  let lineno = ref 0 in
  let rec scan () =
    match next_line () with
    | None -> ()
    | Some line ->
        incr lineno;
        let lineno = !lineno in
        let line =
          match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line
        in
        let parts =
          List.filter
            (fun s -> s <> "")
            (String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line))
        in
        let node_id tok =
          match int_of_string_opt tok with
          | Some v when v >= 0 -> v
          | Some v -> invalid_arg (Printf.sprintf "Graph_io: line %d: negative node id %d" lineno v)
          | None ->
              invalid_arg (Printf.sprintf "Graph_io: line %d: expected a node id, got %S" lineno tok)
        in
        (match parts with
        | [] -> ()
        | [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some c when c >= 0 -> pinned_n := Some c
            | _ -> invalid_arg (Printf.sprintf "Graph_io: line %d: bad node count %S" lineno count))
        | [ a; b ] ->
            let u = node_id a and v = node_id b in
            if u = v then
              invalid_arg (Printf.sprintf "Graph_io: line %d: self-loop %d %d" lineno u v);
            max_id := max !max_id (max u v);
            ivec_push lin lineno;
            ivec_push us u;
            ivec_push vs v
        | parts ->
            invalid_arg
              (Printf.sprintf "Graph_io: line %d: expected 'u v', got %d fields" lineno
                 (List.length parts)));
        scan ()
  in
  scan ();
  let n = match !pinned_n with Some c -> c | None -> !max_id + 1 in
  for i = 0 to lin.len - 1 do
    let u = us.a.(i) and v = vs.a.(i) in
    if u >= n || v >= n then
      invalid_arg
        (Printf.sprintf "Graph_io: line %d: node id %d out of range (n = %d)" lin.a.(i) (max u v) n)
  done;
  Graph.of_edge_array ~n (Array.init lin.len (fun i -> (us.a.(i), vs.a.(i))))

let parse_edge_list text =
  let pos = ref 0 in
  let len = String.length text in
  let fin = ref false in
  let next_line () =
    if !fin then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
          let line = String.sub text !pos (i - !pos) in
          pos := i + 1;
          Some line
      | None ->
          fin := true;
          Some (String.sub text !pos (len - !pos))
  in
  parse_stream next_line

let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try parse_stream (fun () -> In_channel.input_line ic)
      with Invalid_argument msg -> invalid_arg (Printf.sprintf "%s: %s" path msg))

let write_file path g =
  let oc = open_out path in
  output_string oc (to_edge_list g);
  close_out oc

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges
    (fun (u, v) ->
      let attr = if List.mem (u, v) highlight then " [color=red, penwidth=2]" else "" in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attr))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rotation_to_dot rot =
  let g = rot.Rotation.graph in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph embedding {\n  node [shape=circle];\n";
  for v = 0 to Graph.n g - 1 do
    let order = String.concat "," (List.map string_of_int (Array.to_list rot.Rotation.rot.(v))) in
    Buffer.add_string buf (Printf.sprintf "  %d [xlabel=\"(%s)\"];\n" v order)
  done;
  Graph.iter_edges (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
