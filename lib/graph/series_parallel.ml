type sp_tree =
  | Edge of int * int
  | Series of sp_tree * sp_tree
  | Parallel of sp_tree * sp_tree

let rec terminals = function
  | Edge (u, v) -> (u, v)
  | Series (a, b) -> (fst (terminals a), snd (terminals b))
  | Parallel (a, _) -> terminals a

let rec edges_of_sp = function
  | Edge (u, v) -> [ Graph.normalize_edge u v ]
  | Series (a, b) | Parallel (a, b) -> edges_of_sp a @ edges_of_sp b

let graph_of_sp ~n t =
  let es = edges_of_sp t in
  let sorted = List.sort Graph.compare_edge es in
  let rec dup = function a :: (b :: _ as r) -> a = b || dup r | _ -> false in
  if dup sorted then invalid_arg "Series_parallel.graph_of_sp: repeated edge";
  Graph.create ~n es

let rec flip t =
  (* Reverse the terminal orientation of an SP tree. *)
  match t with
  | Edge (u, v) -> Edge (v, u)
  | Series (a, b) -> Series (flip b, flip a)
  | Parallel (a, b) -> Parallel (flip a, flip b)

(* ------------------------------------------------------------------ *)
(* Recognition: series/parallel reduction on a multigraph shadow.      *)
(* ------------------------------------------------------------------ *)

type medge = { mutable alive : bool; mutable a : int; mutable b : int; mutable tree : sp_tree }

let decompose g =
  let n = Graph.n g in
  if n < 2 || not (Traversal.is_connected g) then None
  else begin
    let edges =
      Array.of_list (List.map (fun (u, v) -> { alive = true; a = u; b = v; tree = Edge (u, v) }) (Graph.edges g))
    in
    let incident = Array.make n [] in
    Array.iteri
      (fun i e ->
        incident.(e.a) <- i :: incident.(e.a);
        incident.(e.b) <- i :: incident.(e.b))
      edges;
    let touches i v = edges.(i).a = v || edges.(i).b = v in
    let live_incident v =
      List.sort_uniq Int.compare (List.filter (fun i -> edges.(i).alive && touches i v) incident.(v))
    in
    let alive_count = ref (Array.length edges) in
    let other e v = if e.a = v then e.b else e.a in
    (* Alternate parallel-merge sweeps and degree-2 series sweeps until a
       fixpoint.  Instance sizes are protocol-experiment sizes; the simple
       quadratic loop is fine. *)
    let progress = ref true in
    while !alive_count > 1 && !progress do
      progress := false;
      for v = 0 to n - 1 do
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun i ->
            let e = edges.(i) in
            if e.alive then begin
              let w = other e v in
              if v < w then begin
                match Hashtbl.find_opt tbl w with
                | Some j ->
                    let f = edges.(j) in
                    let et = if e.a = f.a then e.tree else flip e.tree in
                    f.tree <- Parallel (f.tree, et);
                    e.alive <- false;
                    decr alive_count;
                    progress := true
                | None -> Hashtbl.add tbl w i
              end
            end)
          (live_incident v)
      done;
      for v = 0 to n - 1 do
        if !alive_count > 1 then
          match live_incident v with
          | [ i; j ] when i <> j ->
              let e = edges.(i) and f = edges.(j) in
              let x = other e v and y = other f v in
              if x <> y then begin
                (* Merge into edge e running x -> v -> y. *)
                let t1 = if e.a = x then e.tree else flip e.tree in
                let t2 = if f.a = v then f.tree else flip f.tree in
                e.a <- x;
                e.b <- y;
                e.tree <- Series (t1, t2);
                f.alive <- false;
                decr alive_count;
                incident.(x) <- i :: incident.(x);
                incident.(y) <- i :: incident.(y);
                progress := true
              end
          | _ -> ()
      done
    done;
    if !alive_count = 1 then Some (Array.to_list edges |> List.find (fun e -> e.alive)).tree else None
  end

let is_series_parallel g = Option.is_some (decompose g)

let is_treewidth_le_2 g =
  let n = Graph.n g in
  let module S = Set.Make (Int) in
  let adj = Array.make n S.empty in
  Graph.iter_edges
    (fun (u, v) ->
      adj.(u) <- S.add v adj.(u);
      adj.(v) <- S.add u adj.(v))
    g;
  let alive = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if S.cardinal adj.(v) <= 2 then Queue.add v queue
  done;
  let remaining = ref n in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if alive.(v) && S.cardinal adj.(v) <= 2 then begin
      alive.(v) <- false;
      decr remaining;
      let nbrs = S.elements adj.(v) in
      List.iter (fun w -> adj.(w) <- S.remove v adj.(w)) nbrs;
      (match nbrs with
      | [ a; b ] ->
          adj.(a) <- S.add b adj.(a);
          adj.(b) <- S.add a adj.(b)
      | _ -> ());
      List.iter (fun w -> if alive.(w) && S.cardinal adj.(w) <= 2 then Queue.add w queue) nbrs
    end
  done;
  !remaining = 0

(* ------------------------------------------------------------------ *)
(* Nested ear decompositions (Eppstein; paper Lemma 8.1).              *)
(* ------------------------------------------------------------------ *)

let rec ears_of_sp_aux t =
  (* Returns (first_ear, later_ears): the first ear is a terminal-to-terminal
     path; series concatenates first ears, parallel demotes the second
     branch's first ear to a later ear spanning the shared terminals. *)
  match t with
  | Edge (u, v) -> ([ u; v ], [])
  | Series (a, b) ->
      let f1, r1 = ears_of_sp_aux a and f2, r2 = ears_of_sp_aux b in
      (* the first ear is never empty (Edge yields [u; v]) *)
      let rest2 = match f2 with [] -> [] | _ :: rest -> rest in
      (f1 @ rest2, r1 @ r2)
  | Parallel (a, b) ->
      let f1, r1 = ears_of_sp_aux a and f2, r2 = ears_of_sp_aux b in
      (f1, (f2 :: r2) @ r1)

let ears_of_sp t =
  let first, rest = ears_of_sp_aux t in
  first :: rest

let check_nested_ears g ears =
  match ears with
  | [] -> Graph.m g = 0
  | _ ->
      let n = Graph.n g in
      let ears_arr = Array.of_list (List.map Array.of_list ears) in
      let k = Array.length ears_arr in
      let module ES = Set.Make (struct
        type t = Graph.edge

        let compare = Graph.compare_edge
      end) in
      (* Structural: each ear a simple path along edges; edge partition. *)
      let covered = ref ES.empty in
      let structural = ref true in
      Array.iter
        (fun ear ->
          let len = Array.length ear in
          if len < 2 then structural := false
          else begin
            if List.length (List.sort_uniq Int.compare (Array.to_list ear)) <> len then structural := false;
            for i = 0 to len - 2 do
              let e = Graph.normalize_edge ear.(i) ear.(i + 1) in
              if (not (Graph.mem_edge g ear.(i) ear.(i + 1))) || ES.mem e !covered then structural := false
              else covered := ES.add e !covered
            done
          end)
        ears_arr;
      if (not !structural) || ES.cardinal !covered <> Graph.m g then false
      else begin
        (* membership.(v): (ear index, position) pairs, all ears v lies on. *)
        let membership = Array.make n [] in
        Array.iteri
          (fun idx ear -> Array.iteri (fun pos v -> membership.(v) <- (idx, pos) :: membership.(v)) ear)
          ears_arr;
        (* Condition 2: interiors fresh — interior nodes of ear j must not
           appear on any ear i < j. *)
        let cond2 = ref true in
        Array.iteri
          (fun idx ear ->
            for p = 1 to Array.length ear - 2 do
              List.iter (fun (i, _) -> if i < idx then cond2 := false) membership.(ear.(p))
            done)
          ears_arr;
        if not !cond2 then false
        else begin
          (* Condition 1: each non-first ear's endpoints lie on a common
             earlier ear; host = the deepest such ear. *)
          let host = Array.make k (-1) in
          let interval = Array.make k (0, 0) in
          let cond1 = ref true in
          for idx = 1 to k - 1 do
            let ear = ears_arr.(idx) in
            let a = ear.(0) and b = ear.(Array.length ear - 1) in
            let common =
              List.filter_map
                (fun (i, pa) ->
                  if i >= idx then None
                  else
                    List.find_map (fun (i', pb) -> if i' = i then Some (i, pa, pb) else None) membership.(b))
                membership.(a)
            in
            match List.sort (fun (i, _, _) (j, _, _) -> Int.compare j i) common with
            | (h, pa, pb) :: _ ->
                host.(idx) <- h;
                interval.(idx) <- (min pa pb, max pa pb)
            | [] -> cond1 := false
          done;
          if not !cond1 then false
          else begin
            (* Condition 3: per host, attached intervals are non-crossing. *)
            let by_host = Hashtbl.create 8 in
            for idx = 1 to k - 1 do
              let h = host.(idx) in
              Hashtbl.replace by_host h (interval.(idx) :: Option.value ~default:[] (Hashtbl.find_opt by_host h))
            done;
            Hashtbl.fold
              (fun _ intervals acc ->
                acc
                &&
                let sorted =
                  List.sort
                    (fun (l1, r1) (l2, r2) -> if l1 <> l2 then Int.compare l1 l2 else Int.compare r2 r1)
                    intervals
                in
                let stack = ref [] in
                let ok = ref true in
                List.iter
                  (fun (l, r) ->
                    let rec close () =
                      match !stack with
                      | r' :: rest when r' <= l ->
                          stack := rest;
                          close ()
                      | _ -> ()
                    in
                    close ();
                    (match !stack with r' :: _ when r > r' -> ok := false | _ -> ());
                    stack := r :: !stack)
                  sorted;
                !ok)
              by_host true
          end
        end
      end
