type t = {
  components : int list array;
  component_edges : Graph.edge list array;
  cut_vertex : bool array;
}

(* Iterative Tarjan–Hopcroft: DFS with an explicit stack, pushing tree and
   back edges; a biconnected component is popped when a child's low-link
   cannot climb above the current vertex. *)
let compute g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Biconnectivity.compute: empty graph";
  if not (Traversal.is_connected g) then invalid_arg "Biconnectivity.compute: disconnected";
  let num = Array.make n (-1) in
  let low = Array.make n 0 in
  let cut = Array.make n false in
  let edge_stack = Stack.create () in
  let comps = ref [] in
  let counter = ref 0 in
  let pop_component (u, v) =
    let es = ref [] in
    let continue = ref true in
    while !continue do
      let (a, b) = Stack.pop edge_stack in
      es := Graph.normalize_edge a b :: !es;
      if (a, b) = (u, v) then continue := false
    done;
    comps := !es :: !comps
  in
  (* Explicit-stack DFS to survive large graphs. Frame: vertex, parent, next
     neighbor index. *)
  let run root =
    let stack = ref [ (root, -1, ref 0) ] in
    num.(root) <- !counter;
    low.(root) <- !counter;
    incr counter;
    let root_children = ref 0 in
    while not (List.is_empty !stack) do
      match !stack with
      | [] -> ()
      | (v, parent, idx) :: rest ->
          let nbrs = Graph.neighbors g v in
          if !idx < Array.length nbrs then begin
            let w = nbrs.(!idx) in
            incr idx;
            if num.(w) = -1 then begin
              Stack.push (v, w) edge_stack;
              if v = root then incr root_children;
              num.(w) <- !counter;
              low.(w) <- !counter;
              incr counter;
              stack := (w, v, ref 0) :: !stack
            end
            else if w <> parent && num.(w) < num.(v) then begin
              Stack.push (v, w) edge_stack;
              low.(v) <- min low.(v) num.(w)
            end
          end
          else begin
            stack := rest;
            match rest with
            | (p, _, _) :: _ ->
                low.(p) <- min low.(p) low.(v);
                if low.(v) >= num.(p) then begin
                  if p <> root then cut.(p) <- true;
                  pop_component (p, v)
                end
            | [] -> ()
          end
    done;
    if !root_children >= 2 then cut.(root) <- true
  in
  run 0;
  let comp_edges = Array.of_list (List.rev !comps) in
  let comp_edges =
    if Array.length comp_edges = 0 then [| [] |] (* single node, no edges *) else comp_edges
  in
  let comp_nodes =
    Array.map
      (fun es ->
        let module S = Set.Make (Int) in
        let s = List.fold_left (fun s (u, v) -> S.add u (S.add v s)) S.empty es in
        if S.is_empty s then [ 0 ] else S.elements s)
      comp_edges
  in
  { components = comp_nodes; component_edges = comp_edges; cut_vertex = cut }

let is_biconnected g =
  Graph.n g <= 2
  && Traversal.is_connected g
  ||
  (Graph.n g > 2 && Traversal.is_connected g
  &&
  let bc = compute g in
  Array.length bc.components = 1)

type rooted = {
  bc : t;
  root_block : int;
  block_depth : int array;
  separating : int array;
  parent_block : int array;
}

let root bc ~root_block =
  let k = Array.length bc.components in
  let n = Array.length bc.cut_vertex in
  (* blocks_of.(v) = blocks containing v. *)
  let blocks_of = Array.make n [] in
  Array.iteri (fun b nodes -> List.iter (fun v -> blocks_of.(v) <- b :: blocks_of.(v)) nodes) bc.components;
  let block_depth = Array.make k (-1) in
  let separating = Array.make k (-1) in
  let parent_block = Array.make k (-1) in
  let queue = Queue.create () in
  block_depth.(root_block) <- 0;
  Queue.add root_block queue;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    List.iter
      (fun v ->
        if bc.cut_vertex.(v) && v <> separating.(b) then
          List.iter
            (fun b' ->
              if block_depth.(b') = -1 then begin
                block_depth.(b') <- block_depth.(b) + 1;
                separating.(b') <- v;
                parent_block.(b') <- b;
                Queue.add b' queue
              end)
            blocks_of.(v))
      bc.components.(b)
  done;
  { bc; root_block; block_depth; separating; parent_block }

(* Schmidt's chain decomposition (2013): DFS tree with back edges; for every
   vertex in DFS-discovery order and every back edge from it to a
   descendant... conventions: we root a DFS tree, orient back edges from the
   *ancestor* side, and grow each chain from the ancestor through the back
   edge, then up the tree via parents until hitting a visited vertex. *)
let chain_decomposition g =
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then None
  else begin
    let parent = Array.make n (-1) in
    let dfs_num = Array.make n (-1) in
    let order = ref [] in
    let counter = ref 0 in
    (* iterative DFS *)
    let rec dfs v =
      dfs_num.(v) <- !counter;
      incr counter;
      order := v :: !order;
      Array.iter
        (fun w ->
          if dfs_num.(w) = -1 then begin
            parent.(w) <- v;
            dfs w
          end)
        (Graph.neighbors g v)
    in
    dfs 0;
    let order = List.rev !order in
    let visited = Array.make n false in
    let chains = ref [] in
    List.iter
      (fun v ->
        (* back edges incident to v whose other end is a descendant of v:
           (v, w) is a back edge iff it is not a tree edge and
           dfs_num w > dfs_num v *)
        Array.iter
          (fun w ->
            if parent.(w) <> v && parent.(v) <> w && dfs_num.(w) > dfs_num.(v) then begin
              visited.(v) <- true;
              let chain = ref [ v ] in
              let cur = ref w in
              while not visited.(!cur) do
                visited.(!cur) <- true;
                chain := !cur :: !chain;
                cur := parent.(!cur)
              done;
              chain := !cur :: !chain;
              chains := List.rev !chain :: !chains
            end)
          (Graph.neighbors g v))
      order;
    match List.rev !chains with [] -> None | cs -> Some cs
  end

let is_biconnected_chains g =
  let n = Graph.n g in
  if n < 3 then n >= 1 && Traversal.is_connected g
  else
    match chain_decomposition g with
    | None -> false
    | Some chains ->
        (* every edge in exactly one chain or a tree edge inside a chain:
           Schmidt: 2-edge-connected iff every edge is in some chain; add:
           the first chain is the only cycle *)
        let module ES = Set.Make (struct
          type t = Graph.edge

          let compare = Graph.compare_edge
        end) in
        let covered = ref ES.empty in
        List.iter
          (fun chain ->
            let rec walk = function
              | a :: (b :: _ as rest) ->
                  covered := ES.add (Graph.normalize_edge a b) !covered;
                  walk rest
              | _ -> ()
            in
            walk chain)
          chains;
        let all_covered = Graph.fold_edges (fun e acc -> acc && ES.mem e !covered) g true in
        let cycles =
          List.filter
            (fun chain ->
              match chain with [] | [ _ ] -> false | first :: _ -> List.nth chain (List.length chain - 1) = first)
            chains
        in
        let first_is_cycle =
          match chains with
          | first :: _ -> List.length first >= 3 && List.hd first = List.nth first (List.length first - 1)
          | [] -> false
        in
        all_covered && first_is_cycle && List.length cycles = 1
