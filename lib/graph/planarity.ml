module Int_set = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* DMP on a biconnected graph with >= 3 nodes.                         *)
(* ------------------------------------------------------------------ *)

type face = { verts : int array; vset : Int_set.t }

let mk_face verts = { verts; vset = Array.fold_left (fun s v -> Int_set.add v s) Int_set.empty verts }

let find_cycle g =
  (* DFS until a back edge closes a cycle; biconnected with n >= 3 always
     has one. *)
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let state = Array.make n 0 in
  let exception Found of int list in
  try
    let rec dfs v =
      state.(v) <- 1;
      Array.iter
        (fun w ->
          if state.(w) = 0 then begin
            parent.(w) <- v;
            dfs w
          end
          else if state.(w) = 1 && w <> parent.(v) then begin
            (* cycle w .. v *)
            let rec climb u acc = if u = w then u :: acc else climb parent.(u) (u :: acc) in
            raise (Found (climb v []))
          end)
        (Graph.neighbors g v);
      state.(v) <- 2
    in
    dfs 0;
    invalid_arg "Planarity.find_cycle: acyclic biconnected graph"
  with Found c -> c

type fragment =
  | Chord of int * int
  | Comp of { nodes : int list; attachments : int list }

let fragments g embedded_vertex embedded_edge =
  let n = Graph.n g in
  let frags = ref [] in
  (* Chords between embedded vertices. *)
  Graph.iter_edges
    (fun (u, v) ->
      if embedded_vertex.(u) && embedded_vertex.(v) && not (embedded_edge u v) then
        frags := Chord (u, v) :: !frags)
    g;
  (* Components of G minus embedded vertices. *)
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if (not embedded_vertex.(s)) && comp.(s) = -1 then begin
      let id = !next in
      incr next;
      let nodes = ref [] in
      let attach = ref Int_set.empty in
      let queue = Queue.create () in
      comp.(s) <- id;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        nodes := v :: !nodes;
        Array.iter
          (fun w ->
            if embedded_vertex.(w) then attach := Int_set.add w !attach
            else if comp.(w) = -1 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          (Graph.neighbors g v)
      done;
      frags := Comp { nodes = !nodes; attachments = Int_set.elements !attach } :: !frags
    end
  done;
  !frags

let fragment_attachments = function
  | Chord (u, v) -> [ u; v ]
  | Comp { attachments; _ } -> attachments

(* Path through the fragment between two attachments, interior inside the
   fragment. *)
let fragment_path g fragment =
  match fragment with
  | Chord (u, v) -> [ u; v ]
  | Comp { nodes; attachments } -> (
      match attachments with
      | a :: b :: _ ->
          let allowed = List.fold_left (fun s v -> Int_set.add v s) Int_set.empty nodes in
          let n = Graph.n g in
          let prev = Array.make n (-2) in
          let queue = Queue.create () in
          prev.(a) <- -1;
          (* First hop must enter the fragment. *)
          Array.iter
            (fun w ->
              if Int_set.mem w allowed && prev.(w) = -2 then begin
                prev.(w) <- a;
                Queue.add w queue
              end)
            (Graph.neighbors g a);
          let target = ref (-1) in
          while !target = -1 && not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            if Graph.mem_edge g v b then target := v
            else
              Array.iter
                (fun w ->
                  if Int_set.mem w allowed && prev.(w) = -2 then begin
                    prev.(w) <- v;
                    Queue.add w queue
                  end)
                (Graph.neighbors g v)
          done;
          if !target = -1 then invalid_arg "Planarity.fragment_path: no path (graph not biconnected?)";
          let rec build v acc = if v = -1 then acc else build prev.(v) (v :: acc) in
          build !target [ b ]
      | _ -> invalid_arg "Planarity.fragment_path: fragment with < 2 attachments")

let admissible faces frag =
  let att = fragment_attachments frag in
  List.filter (fun f -> List.for_all (fun v -> Int_set.mem v f.vset) att) faces

(* Split face [f] by embedding [path] (endpoints on the face). *)
let split_face f path =
  let verts = f.verts in
  let r = Array.length verts in
  let a = List.hd path in
  let b = List.nth path (List.length path - 1) in
  let idx x =
    let rec go i = if i >= r then invalid_arg "split_face: endpoint not on face" else if verts.(i) = x then i else go (i + 1) in
    go 0
  in
  let ia = idx a and ib = idx b in
  let interior =
    match path with
    | [] | [ _ ] -> []
    | _ :: tl -> ( match List.rev tl with [] -> [] | _ :: rev_mid -> List.rev rev_mid)
  in
  (* Walk a -> ... -> b along the face. *)
  let seg_ab =
    let len = ((ib - ia + r) mod r) + 1 in
    List.init len (fun i -> verts.((ia + i) mod r))
  in
  let seg_ba =
    let len = ((ia - ib + r) mod r) + 1 in
    List.init len (fun i -> verts.((ib + i) mod r))
  in
  (* f1: a ..face.. b, then path interior reversed (b -> a direction).
     f2: b ..face.. a, then path interior forward (a -> b direction).
     Both walks keep the original orientation on the face segment. *)
  let f1 = Array.of_list (List.filteri (fun i _ -> i < List.length seg_ab - 0) seg_ab @ List.rev interior) in
  let f2 = Array.of_list (seg_ba @ interior) in
  (* Drop the duplicated closing vertex: seg_ab ends at b and the cycle
     closes back to a after the interior, so the arrays above are already
     proper vertex cycles except that seg includes both a and b. *)
  (mk_face f1, mk_face f2)

let embed_biconnected g =
  let n = Graph.n g in
  let m = Graph.m g in
  if n >= 3 && m > (3 * n) - 6 then None
  else begin
    let cycle = find_cycle g in
    let cyc = Array.of_list cycle in
    let embedded_vertex = Array.make n false in
    let module Edge_tbl = Hashtbl in
    let emb_edges = Edge_tbl.create (2 * m) in
    let add_edge u v = Edge_tbl.replace emb_edges (Graph.normalize_edge u v) () in
    let has_edge u v = Edge_tbl.mem emb_edges (Graph.normalize_edge u v) in
    Array.iter (fun v -> embedded_vertex.(v) <- true) cyc;
    let k = Array.length cyc in
    for i = 0 to k - 1 do
      add_edge cyc.(i) cyc.((i + 1) mod k)
    done;
    let faces = ref [ mk_face cyc; mk_face (Array.init k (fun i -> cyc.(k - 1 - i))) ] in
    let edges_left = ref (m - k) in
    let ok = ref true in
    while !ok && !edges_left > 0 do
      let frags = fragments g embedded_vertex has_edge in
      (* Pick a fragment with exactly one admissible face if any; otherwise
         any fragment; zero admissible faces anywhere => nonplanar. *)
      let scored = List.map (fun fr -> (fr, admissible !faces fr)) frags in
      if List.exists (fun (_, adm) -> List.is_empty adm) scored then ok := false
      else begin
        let fr, adm =
          match List.find_opt (fun (_, adm) -> List.length adm = 1) scored with
          | Some x -> x
          | None -> List.hd scored
        in
        let face = List.hd adm in
        let path = fragment_path g fr in
        let f1, f2 = split_face face path in
        faces := f1 :: f2 :: List.filter (fun f -> f != face) !faces;
        let rec mark = function
          | u :: (v :: _ as rest) ->
              embedded_vertex.(u) <- true;
              embedded_vertex.(v) <- true;
              if not (has_edge u v) then begin
                add_edge u v;
                decr edges_left
              end;
              mark rest
          | _ -> ()
        in
        mark path
      end
    done;
    if not !ok then None
    else begin
      (* Reconstruct the rotation system from the face walks: in the face
         tracing convention of {!Rotation.faces}, the dart after (u, v) is
         (v, next_around v u); our face walks therefore define
         next_around v u = w for consecutive darts (u,v),(v,w). *)
      let succ = Array.init n (fun _ -> Hashtbl.create 4) in
      List.iter
        (fun f ->
          let verts = f.verts in
          let r = Array.length verts in
          for i = 0 to r - 1 do
            let u = verts.(i) and v = verts.((i + 1) mod r) and w = verts.((i + 2) mod r) in
            Hashtbl.replace succ.(v) u w
          done)
        !faces;
      let rot =
        Array.init n (fun v ->
            let nbrs = Graph.neighbors g v in
            let deg = Array.length nbrs in
            let out = Array.make deg 0 in
            if deg > 0 then begin
              out.(0) <- nbrs.(0);
              for i = 1 to deg - 1 do
                out.(i) <- Hashtbl.find succ.(v) out.(i - 1)
              done
            end;
            out)
      in
      Some (Rotation.create g rot)
    end
  end

(* ------------------------------------------------------------------ *)
(* General graphs: per component, per block, then merge.               *)
(* ------------------------------------------------------------------ *)

let embed_connected g =
  let n = Graph.n g in
  if n = 0 then Some (Rotation.default g)
  else if Graph.m g = 0 then Some (Rotation.default g)
  else begin
    let bc = Biconnectivity.compute g in
    let rotations = Array.init n (fun _ -> []) in
    let failed = ref false in
    Array.iter
      (fun es ->
        if not !failed then begin
          let module S = Set.Make (Int) in
          let nodes = S.elements (List.fold_left (fun s (u, v) -> S.add u (S.add v s)) S.empty es) in
          match nodes with
          | [] | [ _ ] -> ()
          | [ u; v ] ->
              rotations.(u) <- [ v ] :: rotations.(u);
              rotations.(v) <- [ u ] :: rotations.(v)
          | _ ->
              let sub, back = Graph.induced g nodes in
              (match embed_biconnected sub with
              | None -> failed := true
              | Some rot ->
                  Array.iteri
                    (fun local orig ->
                      let named = Array.to_list (Array.map (fun w -> back.(w)) rot.Rotation.rot.(local)) in
                      rotations.(orig) <- named :: rotations.(orig))
                    back)
        end)
      bc.Biconnectivity.component_edges;
    if !failed then None
    else
      let rot = Array.init n (fun v -> Array.of_list (List.concat rotations.(v))) in
      Some (Rotation.create g rot)
  end

let embed g =
  let n = Graph.n g in
  if n = 0 then Some (Rotation.default g)
  else begin
    let comp, k = Traversal.components g in
    let rot = Array.init n (fun _ -> [||]) in
    let failed = ref false in
    for c = 0 to k - 1 do
      if not !failed then begin
        let nodes = List.filter (fun v -> comp.(v) = c) (List.init n Fun.id) in
        let sub, back = Graph.induced g nodes in
        match embed_connected sub with
        | None -> failed := true
        | Some r ->
            Array.iteri (fun local orig -> rot.(orig) <- Array.map (fun w -> back.(w)) r.Rotation.rot.(local)) back
      end
    done;
    if !failed then None else Some (Rotation.create g rot)
  end

let is_planar g = Option.is_some (embed g)
