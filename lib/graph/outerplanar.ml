let is_outerplanar g =
  let n = Graph.n g in
  let aug = Graph.create ~n:(n + 1) (List.init n (fun v -> (v, n)) @ Graph.edges g) in
  Planarity.is_planar aug

(* Unique Hamiltonian cycle of a biconnected outerplanar graph via degree-2
   smoothing: remove a degree-2 vertex v with neighbors a, b; add edge (a,b);
   recurse; a and b are necessarily consecutive on the smaller cycle
   (uniqueness of the Hamiltonian cycle), so reinsert v between them. *)
let hamiltonian_cycle g =
  let n = Graph.n g in
  if n < 3 then None
  else if not (Biconnectivity.is_biconnected g && is_outerplanar g) then None
  else begin
    let rec peel g alive =
      (* [alive]: original ids of the current graph's nodes (current graph is
         on the full id space; dead nodes isolated). *)
      if List.length alive = 3 then Some alive
      else
        match List.find_opt (fun v -> Graph.degree g v = 2) alive with
        | None -> None
        | Some v ->
            let nb = Graph.neighbors g v in
            let a = nb.(0) and b = nb.(1) in
            let g' =
              Graph.add_edges
                (Graph.remove_edges g [ Graph.normalize_edge v a; Graph.normalize_edge v b ])
                [ Graph.normalize_edge a b ]
            in
            (match peel g' (List.filter (fun w -> w <> v) alive) with
            | None -> None
            | Some cyc ->
                (* insert v between a and b on the cycle *)
                let arr = Array.of_list cyc in
                let k = Array.length arr in
                let out = ref [] in
                let inserted = ref false in
                for i = k - 1 downto 0 do
                  let x = arr.(i) and y = arr.((i + 1) mod k) in
                  if (not !inserted) && ((x = a && y = b) || (x = b && y = a)) then begin
                    out := x :: v :: !out;
                    inserted := true
                  end
                  else out := x :: !out
                done;
                if !inserted then Some !out else None)
    in
    match peel g (List.init n Fun.id) with
    | None -> None
    | Some cyc ->
        (* Sanity: cyc must be a Hamiltonian cycle of g. *)
        let arr = Array.of_list cyc in
        let k = Array.length arr in
        let ok =
          k = n
          && List.sort_uniq Int.compare cyc = List.init n Fun.id
          && Array.for_all Fun.id (Array.init k (fun i -> Graph.mem_edge g arr.(i) arr.((i + 1) mod k)))
        in
        if ok then Some cyc else None
  end

let check_path_witness g path =
  let n = Graph.n g in
  match Traversal.hamiltonian_path_of_edges ~n (List.map (fun (a, b) -> Graph.normalize_edge a b) (let rec pairs = function a :: (b :: _ as r) -> (a, b) :: pairs r | _ -> [] in pairs path)) with
  | None -> false
  | Some _ ->
      (* [path] itself must list all nodes and consecutive ones adjacent. *)
      List.length path = n
      && List.sort_uniq Int.compare path = List.init n Fun.id
      && (let rec adj = function
            | a :: (b :: _ as r) -> Graph.mem_edge g a b && adj r
            | _ -> true
          in
          adj path)
      &&
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) path;
      (* Non-path edges as (l, r) position intervals. *)
      let intervals =
        Graph.fold_edges
          (fun (u, v) acc ->
            let l = min pos.(u) pos.(v) and r = max pos.(u) pos.(v) in
            if r - l = 1 then acc else (l, r) :: acc)
          g []
      in
      let starting = Array.make n [] in
      List.iter (fun (l, r) -> starting.(l) <- r :: starting.(l)) intervals;
      (* At position l, push ends in decreasing order so the nearest end is
         on top; crossing = a new interval outlasting its enclosing one. *)
      let stack = ref [] in
      let ok = ref true in
      for p = 0 to n - 1 do
        let rec close () =
          match !stack with
          | top :: rest when top = p ->
              stack := rest;
              close ()
          | _ -> ()
        in
        close ();
        List.iter
          (fun r ->
            (match !stack with
            | top :: _ when r > top -> ok := false
            | _ -> ());
            stack := r :: !stack)
          (List.sort (fun a b -> Int.compare b a) starting.(p))
      done;
      !ok && List.is_empty !stack

let path_of_cycle_cut cyc ~cut_after =
  (* cycle [c0..ck-1]; remove the cycle edge between positions cut_after and
     cut_after+1; path starts at cut_after+1. *)
  let arr = Array.of_list cyc in
  let k = Array.length arr in
  List.init k (fun i -> arr.((cut_after + 1 + i) mod k))

(* Hamiltonian path of a block from [start_] to [stop] (either may be [None]
   meaning free): the block's unique Hamiltonian cycle cut at an edge
   incident appropriately. *)
let block_path g nodes ~start_ ~stop =
  match nodes with
  | [ a ] -> Some [ a ]
  | [ a; b ] -> (
      match (start_, stop) with
      | Some s, Some t -> if s = a && t = b then Some [ a; b ] else if s = b && t = a then Some [ b; a ] else None
      | Some s, None -> Some (if s = a then [ a; b ] else [ b; a ])
      | None, Some t -> Some (if t = b then [ a; b ] else [ b; a ])
      | None, None -> Some [ a; b ])
  | _ -> (
      let sub, back = Graph.induced g nodes in
      match hamiltonian_cycle sub with
      | None -> None
      | Some cyc ->
          let cyc = List.map (fun v -> back.(v)) cyc in
          let k = List.length cyc in
          (* Every Hamiltonian path with proper nesting is the cycle minus
             one cycle edge (see Theorem 6.1); enumerate both orientations of
             every cut and keep one meeting the endpoint constraints. *)
          let candidates =
            List.concat_map
              (fun i ->
                let p = path_of_cycle_cut cyc ~cut_after:i in
                [ p; List.rev p ])
              (List.init k Fun.id)
          in
          let endpoint_ok want node = match want with None -> true | Some x -> x = node in
          List.find_opt
            (fun p ->
              endpoint_ok start_ (List.hd p) && endpoint_ok stop (List.nth p (k - 1)))
            candidates)

let path_witness g =
  let n = Graph.n g in
  if n = 0 then None
  else if n = 1 then Some [ 0 ]
  else if not (Traversal.is_connected g) then None
  else if Biconnectivity.is_biconnected g then
    if n = 2 then Some [ 0; 1 ]
    else
      match hamiltonian_cycle g with
      | None -> None
      | Some cyc -> Some (path_of_cycle_cut cyc ~cut_after:(List.length cyc - 1))
  else begin
    (* Block-chain: the block-cut tree must be a path of blocks. *)
    let bc = Biconnectivity.compute g in
    let k = Array.length bc.Biconnectivity.components in
    let cut_count b = List.length (List.filter (fun v -> bc.Biconnectivity.cut_vertex.(v)) bc.Biconnectivity.components.(b)) in
    let ends = List.filter (fun b -> cut_count b <= 1) (List.init k Fun.id) in
    let cut_in_blocks v =
      List.length (List.filter (fun b -> List.mem v bc.Biconnectivity.components.(b)) (List.init k Fun.id))
    in
    let chain_ok =
      List.for_all (fun b -> cut_count b <= 2) (List.init k Fun.id)
      && List.length ends = 2
      && List.for_all (fun v -> (not bc.Biconnectivity.cut_vertex.(v)) || cut_in_blocks v = 2) (List.init n Fun.id)
    in
    if not chain_ok then None
    else begin
      (* Walk the chain from one end block. *)
      let first = List.hd ends in
      let rec walk b ~entry visited acc =
        let cuts =
          List.filter
            (fun v -> bc.Biconnectivity.cut_vertex.(v) && Some v <> entry)
            bc.Biconnectivity.components.(b)
        in
        let exit = match cuts with [] -> None | [ v ] -> Some v | _ -> None in
        if (not (List.is_empty cuts)) && exit = None then None
        else
          match block_path g bc.Biconnectivity.components.(b) ~start_:entry ~stop:exit with
          | None -> None
          | Some p -> (
              (* drop the entry node (already emitted by the previous block) *)
              let p' = match (entry, p) with Some _, _ :: rest -> rest | _, _ -> p in
              let acc = acc @ p' in
              match exit with
              | None -> Some acc
              | Some v -> (
                  let next =
                    List.find_opt
                      (fun b' ->
                        b' <> b
                        && (not (List.mem b' visited))
                        && List.mem v bc.Biconnectivity.components.(b'))
                      (List.init k Fun.id)
                  in
                  match next with
                  | None -> None
                  | Some b' -> walk b' ~entry:(Some v) (b :: visited) acc))
      in
      match walk first ~entry:None [] [] with
      | Some p when check_path_witness g p -> Some p
      | _ -> None
    end
  end

let is_path_outerplanar g =
  match path_witness g with Some p -> check_path_witness g p | None -> false

(* Maximal outerplanar completion.  Cut the unique Hamiltonian cycle at
   the edge (order[n-1], order[0]): the chords become a properly nested
   interval family.  Each interior face corresponds to an interval (l, r)
   (the cut cycle edge being the root) with boundary l, the positions in
   (l, r) not strictly inside any child interval, and r; fanning every face
   from l triangulates it.  When all faces are triangles, m = 2n - 3. *)
let triangulate g =
  let n = Graph.n g in
  if n < 3 then None
  else
    match hamiltonian_cycle g with
    | None -> None
    | Some cyc ->
        let order = Array.of_list cyc in
        let pos = Array.make n 0 in
        Array.iteri (fun i v -> pos.(v) <- i) order;
        let intervals =
          Graph.fold_edges
            (fun (u, v) acc ->
              let a = min pos.(u) pos.(v) and b = max pos.(u) pos.(v) in
              if b - a >= 2 && not (a = 0 && b = n - 1) then (a, b) :: acc else acc)
            g []
        in
        (* nesting tree via a stack sweep; root face = (0, n-1) *)
        let sorted =
          List.sort (fun (l1, r1) (l2, r2) -> if l1 <> l2 then Int.compare l1 l2 else Int.compare r2 r1)
          ((0, n - 1) :: intervals)
        in
        let children = Hashtbl.create 16 in
        let stack = ref [] in
        List.iter
          (fun (l, r) ->
            let rec close () =
              match !stack with (_, r') :: rest when r' <= l -> stack := rest; close () | _ -> ()
            in
            close ();
            (match !stack with
            | parent :: _ ->
                Hashtbl.replace children parent ((l, r) :: Option.value ~default:[] (Hashtbl.find_opt children parent))
            | [] -> ());
            stack := (l, r) :: !stack)
          sorted;
        let module IS = Set.Make (struct
          type t = int * int

          let compare (a1, b1) (a2, b2) =
            match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
        end) in
        let have = ref (List.fold_left (fun s iv -> IS.add iv s) IS.empty sorted) in
        let added = ref [] in
        List.iter
          (fun ((l, r) as face) ->
            let kids = Option.value ~default:[] (Hashtbl.find_opt children face) in
            let inside p = List.exists (fun (a, b) -> a < p && p < b) kids in
            let verts =
              l :: List.filter (fun p -> not (inside p)) (List.init (r - l - 1) (fun i -> l + 1 + i)) @ [ r ]
            in
            (* fan from l: chords to all face vertices except l, its face
               successor, and r *)
            (match verts with
            | _ :: _ :: rest ->
                List.iter
                  (fun x ->
                    if x <> r && x - l >= 2 && not (IS.mem (l, x) !have) then begin
                      have := IS.add (l, x) !have;
                      added := (l, x) :: !added
                    end)
                  (match rest with [] -> [] | _ -> List.filteri (fun i _ -> i < List.length rest - 0) rest)
            | _ -> ()))
          sorted;
        let new_edges = List.map (fun (a, b) -> Graph.normalize_edge order.(a) order.(b)) !added in
        Some (Graph.add_edges g new_edges)
