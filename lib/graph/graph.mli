(** Undirected simple graphs on nodes [0 .. n-1].

    Immutable after construction; neighbor arrays are sorted so membership
    tests are logarithmic.  This is the instance type for every verification
    task in the paper: instances carry no node inputs beyond the topology
    (and, for embedded planarity, a rotation system kept separately). *)

type t

type edge = int * int
(** Normalized: [(u, v)] with [u < v]. *)

val create : n:int -> edge list -> t
(** Builds a graph.  Duplicate edges are collapsed; self-loops are
    rejected ([Invalid_argument]). *)

val of_edge_array : n:int -> (int * int) array -> t
(** Like {!create} on an edge array, via a two-pass CSR-style build
    (degree count, in-place fill, per-row sort + dedup) with no
    intermediate per-node lists — the constructor for 10^5..10^6-node
    instances.  Endpoints may come in either order; duplicates are
    collapsed and self-loops / out-of-range ids are rejected with the
    same messages as {!create}. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted, read-only by convention (do not mutate). *)

val degree : t -> int -> int
val max_degree : t -> int
val mem_edge : t -> int -> int -> bool

val edges : t -> edge list
(** All edges, normalized, in lexicographic order. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (edge -> unit) -> t -> unit

val normalize_edge : int -> int -> edge

val compare_edge : edge -> edge -> int
(** Lexicographic; the typed comparator for edge sets/maps and sorts
    (never use polymorphic [compare] on edges). *)

val add_edges : t -> edge list -> t
val remove_edges : t -> edge list -> t

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] (relabelled
    [0..k-1] in the given order) together with the map from new ids back to
    original ids. *)

val relabel : t -> perm:int array -> t
(** [relabel g ~perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)

val union_disjoint : t list -> t * int array array
(** Disjoint union; also returns, per input graph, the map from its node ids
    to ids in the union. *)

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val pp : Format.formatter -> t -> unit

(** Common constructions, used throughout tests and generators. *)

val path_graph : int -> t
(** [path_graph n]: edges (i, i+1). *)

val cycle_graph : int -> t
val complete : int -> t
val complete_bipartite : int -> int -> t
val star : int -> t
(** [star n]: node 0 joined to [1..n-1]. *)

val grid : int -> int -> t
(** [grid rows cols], node [(r, c)] at id [r * cols + c]. *)

val subdivide : t -> times:int -> t
(** Replace every edge by a path of [times + 1] edges (new interior nodes
    get fresh ids).  Preserves planarity and non-planarity. *)
