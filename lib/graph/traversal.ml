let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) = -1 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  for src = 0 to n - 1 do
    if comp.(src) = -1 then begin
      let id = !k in
      incr k;
      let queue = Queue.create () in
      comp.(src) <- id;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Array.iter
          (fun w ->
            if comp.(w) = -1 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          (Graph.neighbors g v)
      done
    end
  done;
  (comp, !k)

let is_connected g = Graph.n g = 0 || snd (components g) = 1

let spanning_tree g root =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  parent.(root) <- root;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if parent.(w) = -1 then begin
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Graph.neighbors g v)
  done;
  parent

let dfs_order g root =
  let n = Graph.n g in
  let seen = Array.make n false in
  let out = ref [] in
  let rec go v =
    seen.(v) <- true;
    out := v :: !out;
    Array.iter (fun w -> if not seen.(w) then go w) (Graph.neighbors g v)
  in
  go root;
  List.rev !out

let hamiltonian_path_of_edges ~n es =
  if n = 0 then None
  else if n = 1 then if List.is_empty es then Some [ 0 ] else None
  else begin
    let deg = Array.make n 0 in
    let adj = Array.make n [] in
    let ok = ref (List.length es = n - 1) in
    List.iter
      (fun (u, v) ->
        if u < 0 || v < 0 || u >= n || v >= n || u = v then ok := false
        else begin
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          adj.(u) <- v :: adj.(u);
          adj.(v) <- u :: adj.(v)
        end)
      es;
    if not !ok then None
    else begin
      let endpoints = ref [] in
      Array.iteri
        (fun v d ->
          if d = 1 then endpoints := v :: !endpoints
          else if d <> 2 then ok := false)
        deg;
      match (!ok, List.sort Int.compare !endpoints) with
      | true, [ a; _ ] ->
          (* Walk from [a]; success iff we cover all n nodes (rules out a
             path plus disjoint cycles, which the degree check alone would
             admit). *)
          let seen = Array.make n false in
          let rec walk v acc count =
            seen.(v) <- true;
            match List.filter (fun w -> not seen.(w)) adj.(v) with
            | [] -> if count = n then Some (List.rev (v :: acc)) else None
            | [ w ] -> walk w (v :: acc) (count + 1)
            | _ -> None
          in
          walk a [] 1
      | _ -> None
    end
  end
