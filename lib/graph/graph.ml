type edge = int * int

type t = { n : int; adj : int array array; m : int }

let normalize_edge u v =
  if u = v then invalid_arg "Graph: self-loop";
  if u < v then (u, v) else (v, u)

let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

module Edge_set = Set.Make (struct
  type t = edge

  let compare = compare_edge
end)

let dedup_edges n es =
  List.fold_left
    (fun acc (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Graph: node out of range";
      Edge_set.add (normalize_edge u v) acc)
    Edge_set.empty es

(* Two-pass CSR-style build: count degrees, fill adjacency in place, then
   sort and dedup each row.  No intermediate per-node lists and no balanced
   set — O(m + sum_v d_v log d_v) with flat arrays only, which is what lets
   the 10^6-node generators and the streaming edge-list parser construct
   graphs in seconds.  Validation messages match the historical
   [dedup_edges] path byte for byte. *)
let of_edge_array ~n es =
  if n < 0 then invalid_arg "Graph.create";
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Graph: node out of range";
      if u = v then invalid_arg "Graph: self-loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    es;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    es;
  let entries = ref 0 in
  for v = 0 to n - 1 do
    let a = adj.(v) in
    let len = Array.length a in
    if len > 0 then begin
      Array.sort Int.compare a;
      (* compact duplicates in place, then trim *)
      let w = ref 1 in
      for i = 1 to len - 1 do
        if a.(i) <> a.(!w - 1) then begin
          a.(!w) <- a.(i);
          incr w
        end
      done;
      if !w < len then adj.(v) <- Array.sub a 0 !w;
      entries := !entries + !w
    end
  done;
  { n; adj; m = !entries / 2 }

let create ~n es =
  if n < 0 then invalid_arg "Graph.create";
  of_edge_array ~n (Array.of_list es)

let n t = t.n
let m t = t.m
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)

let max_degree t =
  let d = ref 0 in
  Array.iter (fun a -> d := max !d (Array.length a)) t.adj;
  !d

let mem_edge t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n || u = v then false
  else
    let a = t.adj.(u) in
    let rec search lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = v then true else if a.(mid) < v then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length a)

let fold_edges f t acc =
  let acc = ref acc in
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then acc := f (u, v) !acc) t.adj.(u)
  done;
  !acc

let iter_edges f t = fold_edges (fun e () -> f e) t ()

let edges t = List.rev (fold_edges (fun e acc -> e :: acc) t [])

let add_edges t es = create ~n:t.n (es @ edges t)

let remove_edges t es =
  let banned = List.fold_left (fun s (u, v) -> Edge_set.add (normalize_edge u v) s) Edge_set.empty es in
  create ~n:t.n (List.filter (fun e -> not (Edge_set.mem e banned)) (edges t))

let induced t nodes =
  let nodes = Array.of_list nodes in
  let k = Array.length nodes in
  let back = Array.make t.n (-1) in
  Array.iteri
    (fun i v ->
      if back.(v) <> -1 then invalid_arg "Graph.induced: duplicate node";
      back.(v) <- i)
    nodes;
  let es =
    fold_edges
      (fun (u, v) acc ->
        if back.(u) >= 0 && back.(v) >= 0 then (back.(u), back.(v)) :: acc else acc)
      t []
  in
  Array.iter (fun v -> back.(v) <- -1) nodes;
  (create ~n:k es, nodes)

let relabel t ~perm =
  if Array.length perm <> t.n then invalid_arg "Graph.relabel";
  let seen = Array.make t.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= t.n || seen.(p) then invalid_arg "Graph.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  create ~n:t.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges t))

let union_disjoint ts =
  let offsets = Array.make (List.length ts) 0 in
  let total =
    List.fold_left
      (fun (i, off) g ->
        offsets.(i) <- off;
        (i + 1, off + g.n))
      (0, 0) ts
    |> snd
  in
  let es =
    List.concat (List.mapi (fun i g -> List.map (fun (u, v) -> (u + offsets.(i), v + offsets.(i))) (edges g)) ts)
  in
  let maps = List.mapi (fun i g -> Array.init g.n (fun v -> v + offsets.(i))) ts in
  (create ~n:total es, Array.of_list maps)

let equal a b = a.n = b.n && Edge_set.equal (dedup_edges a.n (edges a)) (dedup_edges b.n (edges b))

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d:" t.n t.m;
  iter_edges (fun (u, v) -> Format.fprintf ppf "@ %d-%d" u v) t;
  Format.fprintf ppf ")@]"

let path_graph n = create ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle_graph n =
  if n < 3 then invalid_arg "Graph.cycle_graph";
  create ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  create ~n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      es := (u, v) :: !es
    done
  done;
  create ~n:(a + b) !es

let star n = create ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid rows cols =
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then es := (id r c, id r (c + 1)) :: !es;
      if r + 1 < rows then es := (id r c, id (r + 1) c) :: !es
    done
  done;
  create ~n:(rows * cols) !es

let subdivide t ~times =
  if times < 0 then invalid_arg "Graph.subdivide";
  if times = 0 then t
  else begin
    let next = ref t.n in
    let es = ref [] in
    iter_edges
      (fun (u, v) ->
        let prev = ref u in
        for _ = 1 to times do
          es := (!prev, !next) :: !es;
          prev := !next;
          incr next
        done;
        es := (!prev, v) :: !es)
      t;
    create ~n:!next !es
  end
