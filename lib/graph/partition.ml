(* Seeded multi-source BFS region growing.  Everything below is plain
   FIFO + array scans in fixed orders — the partition is a pure function
   of (graph, blocks, seed), never of hash order or scheduling.  Blocks
   are claimed at dequeue time: a popped node whose target block already
   holds [cap] members is diverted to the currently smallest block
   (lowest id on ties), which keeps every block at or under the cap
   without starving any of them. *)

type t = {
  nblocks : int;
  block : int array;
  blocks : int array array;
  pos : int array;
  cut_edges : int;
}

let make ?(seed = 0) ~blocks g =
  if blocks < 1 then invalid_arg "Partition.make: blocks < 1";
  let n = Graph.n g in
  let k = min blocks (max 1 n) in
  let block = Array.make n (-1) in
  let size = Array.make k 0 in
  let cap = if n = 0 then 1 else (n + k - 1) / k in
  let smallest () =
    let best = ref 0 in
    for b = 1 to k - 1 do
      if size.(b) < size.(!best) then best := b
    done;
    !best
  in
  let queue = Queue.create () in
  if n > 0 then begin
    (* k distinct BFS roots from the seed-keyed stream; collisions walk
       forward to the next unused node (deterministic) *)
    let rng = Rng.create seed in
    let used = Array.make n false in
    for b = 0 to k - 1 do
      let v = ref (Rng.int rng n) in
      while used.(!v) do
        v := (!v + 1) mod n
      done;
      used.(!v) <- true;
      Queue.add (!v, b) queue
    done
  end;
  let drain () =
    while not (Queue.is_empty queue) do
      let v, b = Queue.pop queue in
      if block.(v) = -1 then begin
        let b = if size.(b) >= cap then smallest () else b in
        block.(v) <- b;
        size.(b) <- size.(b) + 1;
        Array.iter (fun w -> if block.(w) = -1 then Queue.add (w, b) queue) (Graph.neighbors g v)
      end
    done
  in
  drain ();
  (* disconnected leftovers: each unreached component grows into the
     smallest block at the time it is discovered *)
  for v = 0 to n - 1 do
    if block.(v) = -1 then begin
      Queue.add (v, smallest ()) queue;
      drain ()
    end
  done;
  let blocks_arr = Array.init k (fun b -> Array.make size.(b) 0) in
  let fill = Array.make k 0 in
  let pos = Array.make n 0 in
  for v = 0 to n - 1 do
    let b = block.(v) in
    blocks_arr.(b).(fill.(b)) <- v;
    pos.(v) <- fill.(b);
    fill.(b) <- fill.(b) + 1
  done;
  let cut = ref 0 in
  Graph.iter_edges (fun (u, v) -> if block.(u) <> block.(v) then incr cut) g;
  { nblocks = k; block; blocks = blocks_arr; pos; cut_edges = !cut }

let cut_fraction t g =
  let m = Graph.m g in
  if m = 0 then 0. else float_of_int t.cut_edges /. float_of_int m
