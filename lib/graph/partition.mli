(** Deterministic seeded graph partitioning for the sharded network engine.

    [make ~seed ~blocks g] grows [blocks] regions by multi-source BFS from
    seed nodes drawn from an {!Dipp_util.Rng} stream keyed by [seed] alone.
    The result is a pure function of [(g, blocks, seed)] — no dependence on
    hash order, scheduling, or the caller's RNG state — so two processes
    that agree on the inputs agree on every block, which is what lets the
    sharded engine's output stay byte-identical for any [DIPP_SHARDS].

    Invariants (QCheck-tested):
    - the blocks cover [0 .. n-1] and are pairwise disjoint;
    - each [blocks.(b)] is sorted ascending and [block.(v) = b] iff [v]
      is a member of [blocks.(b)];
    - [cut_edges] is the number of undirected edges whose endpoints land
      in different blocks (counted once per edge);
    - growth is capped at [ceil n / nblocks] members per block while any
      block is below the cap, so no block starves. *)

type t = {
  nblocks : int;  (** actual block count: [min blocks (max 1 n)] *)
  block : int array;  (** node -> owning block id *)
  blocks : int array array;  (** block id -> members, ascending *)
  pos : int array;  (** node -> index of the node inside its block *)
  cut_edges : int;  (** edges crossing between blocks *)
}

val make : ?seed:int -> blocks:int -> Graph.t -> t
(** [blocks] is clamped to [1 .. max 1 n]; [seed] defaults to [0].
    Raises [Invalid_argument] if [blocks < 1]. *)

val cut_fraction : t -> Graph.t -> float
(** [cut_edges / m]; [0.] on an edgeless graph. *)
