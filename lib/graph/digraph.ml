module Arc_set = Set.Make (struct
  type t = int * int

  let compare (a1, b1) (a2, b2) = match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
end)

type t = { n : int; out : int array array; inn : int array array; m : int }

let create ~n arcs =
  if n < 0 then invalid_arg "Digraph.create";
  let set =
    List.fold_left
      (fun acc (u, v) ->
        if u = v then invalid_arg "Digraph: self-loop";
        if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Digraph: node out of range";
        Arc_set.add (u, v) acc)
      Arc_set.empty arcs
  in
  let outd = Array.make n 0 and ind = Array.make n 0 in
  Arc_set.iter
    (fun (u, v) ->
      outd.(u) <- outd.(u) + 1;
      ind.(v) <- ind.(v) + 1)
    set;
  let out = Array.init n (fun v -> Array.make outd.(v) 0) in
  let inn = Array.init n (fun v -> Array.make ind.(v) 0) in
  let fo = Array.make n 0 and fi = Array.make n 0 in
  Arc_set.iter
    (fun (u, v) ->
      out.(u).(fo.(u)) <- v;
      fo.(u) <- fo.(u) + 1;
      inn.(v).(fi.(v)) <- u;
      fi.(v) <- fi.(v) + 1)
    set;
  Array.iter (fun a -> Array.sort Int.compare a) out;
  Array.iter (fun a -> Array.sort Int.compare a) inn;
  { n; out; inn; m = Arc_set.cardinal set }

let n t = t.n
let m t = t.m
let out_neighbors t v = t.out.(v)
let in_neighbors t v = t.inn.(v)

let mem_arc t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n then false
  else Array.exists (fun w -> w = v) t.out.(u)

let fold_arcs f t acc =
  let acc = ref acc in
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> acc := f (u, v) !acc) t.out.(u)
  done;
  !acc

let arcs t = List.rev (fold_arcs (fun a acc -> a :: acc) t [])

let underlying t = Graph.create ~n:t.n (arcs t)

let orient g ~order =
  if Array.length order <> Graph.n g then invalid_arg "Digraph.orient";
  let arcs =
    Graph.fold_edges
      (fun (u, v) acc ->
        if order.(u) = order.(v) then invalid_arg "Digraph.orient: order not injective";
        (if order.(u) < order.(v) then (u, v) else (v, u)) :: acc)
      g []
  in
  create ~n:(Graph.n g) arcs

let topological_sort t =
  (* Kahn's algorithm. *)
  let ind = Array.init t.n (fun v -> Array.length t.inn.(v)) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) ind;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    Array.iter
      (fun w ->
        ind.(w) <- ind.(w) - 1;
        if ind.(w) = 0 then Queue.add w queue)
      t.out.(v)
  done;
  if !seen = t.n then Some (List.rev !order) else None

let is_acyclic t = Option.is_some (topological_sort t)

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>digraph(n=%d, m=%d:" t.n t.m;
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d->%d" u v) (arcs t);
  Format.fprintf ppf ")@]"
