(* The transcript corpus registry: one pinned honest instance per
   experiment family E1-E8, each able to record a trace on either runtime
   and to replay a recorded trace against itself.

   Instances are pinned by constants (generator seed, size) independent
   of the run seed, so a trace names everything needed to reproduce it:
   the experiment id picks the registry entry (hence the instance), the
   recorded seed re-drives the coins.  Replay is decision-only where the
   protocol exposes strict label decoders (LR-sorting, E1/E2) and for
   every network trace (Net.replay_check); the composite protocols
   (E3-E8, synchronous runtime) replay by deterministic re-execution and
   a byte-level diff of the full trace. *)

open Dipp_net
module Gen = Dipp_gen.Gen

type sync_run = {
  protocol : string;
  graph : Graph.t;
  verdict : Dip.verdict;
  stats : Dip.stats;
  frames : Trace.frame list;
}

type entry = {
  id : string;
  protocol : string;
  recipe : string;
  instance_graph : unit -> Graph.t;
  run : seed:int -> sync_run;
  decision_replay : (Trace.t -> (Dip.verdict, string) Stdlib.result) option;
}

type replay_report = { mode : string; verdict : Dip.verdict }

(* ---- the eight families ---------------------------------------------- *)

let lr_entry id ~n ~gseed =
  let inst =
    lazy
      (let path, arcs = Gen.lr_yes ~n gseed in
       { Lr_sorting.n; path; arcs })
  in
  {
    id;
    protocol = "lr_sorting";
    recipe = Printf.sprintf "lr_yes n=%d gseed=%d" n gseed;
    instance_graph = (fun () -> Lr_sorting.underlying_graph (Lazy.force inst));
    run =
      (fun ~seed ->
        let inst = Lazy.force inst in
        let r = Lr_sorting.run ~seed ~retain:true ~prover:Lr_sorting.Honest inst in
        {
          protocol = "lr_sorting";
          graph = Lr_sorting.underlying_graph inst;
          verdict = r.Lr_sorting.verdict;
          stats = r.Lr_sorting.stats;
          frames = r.Lr_sorting.transcript;
        });
    decision_replay =
      Some (fun t -> Lr_sorting.replay (Lazy.force inst) t.Trace.frames);
  }

let e1 = lr_entry "E1" ~n:128 ~gseed:42
let e2 = lr_entry "E2" ~n:300 ~gseed:42

let e3 =
  let inst = lazy (Gen.path_outerplanar ~n:200 11) in
  {
    id = "E3";
    protocol = "path_outerplanarity";
    recipe = "path_outerplanar n=200 gseed=11";
    instance_graph = (fun () -> fst (Lazy.force inst));
    run =
      (fun ~seed ->
        let g, w = Lazy.force inst in
        let r =
          Path_outerplanarity.run ~seed ~retain:true ~prover:Path_outerplanarity.Honest
            { Path_outerplanarity.graph = g; witness = Some w }
        in
        {
          protocol = "path_outerplanarity";
          graph = g;
          verdict = r.Path_outerplanarity.verdict;
          stats = r.Path_outerplanarity.stats;
          frames = r.Path_outerplanarity.transcript;
        });
    decision_replay = None;
  }

let e4 =
  let inst = lazy (Gen.outerplanar ~blocks:4 3) in
  {
    id = "E4";
    protocol = "outerplanarity";
    recipe = "outerplanar blocks=4 gseed=3";
    instance_graph = (fun () -> Lazy.force inst);
    run =
      (fun ~seed ->
        let g = Lazy.force inst in
        let r =
          Outerplanarity.run ~seed ~retain:true ~prover:Outerplanarity.Honest
            { Outerplanarity.graph = g }
        in
        {
          protocol = "outerplanarity";
          graph = g;
          verdict = r.Outerplanarity.verdict;
          stats = r.Outerplanarity.stats;
          frames = r.Outerplanarity.transcript;
        });
    decision_replay = None;
  }

let e5 =
  let inst =
    lazy
      (let g = Gen.planar ~n:64 5 in
       match Gen.embedding g with
       | Some rot -> (g, rot)
       | None -> invalid_arg "Registry: E5 planar instance has no embedding")
  in
  {
    id = "E5";
    protocol = "planar_embedding";
    recipe = "planar n=64 gseed=5 + embedding";
    instance_graph = (fun () -> fst (Lazy.force inst));
    run =
      (fun ~seed ->
        let g, rot = Lazy.force inst in
        let r =
          Planar_embedding.run ~seed ~retain:true ~prover:Planar_embedding.Honest
            { Planar_embedding.graph = g; rot }
        in
        {
          protocol = "planar_embedding";
          graph = g;
          verdict = r.Planar_embedding.verdict;
          stats = r.Planar_embedding.stats;
          frames = r.Planar_embedding.transcript;
        });
    decision_replay = None;
  }

let e6 =
  let inst = lazy (Gen.planar ~n:64 5) in
  {
    id = "E6";
    protocol = "planarity";
    recipe = "planar n=64 gseed=5";
    instance_graph = (fun () -> Lazy.force inst);
    run =
      (fun ~seed ->
        let g = Lazy.force inst in
        let r = Planarity.run ~seed ~retain:true ~prover:Planarity.Honest { Planarity.graph = g } in
        {
          protocol = "planarity";
          graph = g;
          verdict = r.Planarity.verdict;
          stats = r.Planarity.stats;
          frames = r.Planarity.transcript;
        });
    decision_replay = None;
  }

let e7 =
  let inst =
    lazy
      (let tr, g = Gen.series_parallel ~size:64 3 in
       (g, Series_parallel.ears_of_sp tr))
  in
  {
    id = "E7";
    protocol = "series_parallel_dip";
    recipe = "series_parallel size=64 gseed=3";
    instance_graph = (fun () -> fst (Lazy.force inst));
    run =
      (fun ~seed ->
        let g, ears = Lazy.force inst in
        let r =
          Series_parallel_dip.run ~seed ~retain:true ~prover:Series_parallel_dip.Honest
            { Series_parallel_dip.graph = g; ears = Some ears }
        in
        {
          protocol = "series_parallel_dip";
          graph = g;
          verdict = r.Series_parallel_dip.verdict;
          stats = r.Series_parallel_dip.stats;
          frames = r.Series_parallel_dip.transcript;
        });
    decision_replay = None;
  }

let e8 =
  let inst = lazy (Gen.treewidth2 ~blocks:4 3) in
  {
    id = "E8";
    protocol = "treewidth2_dip";
    recipe = "treewidth2 blocks=4 gseed=3";
    instance_graph = (fun () -> Lazy.force inst);
    run =
      (fun ~seed ->
        let g = Lazy.force inst in
        let r =
          Treewidth2_dip.run ~seed ~retain:true ~prover:Treewidth2_dip.Honest
            { Treewidth2_dip.graph = g }
        in
        {
          protocol = "treewidth2_dip";
          graph = g;
          verdict = r.Treewidth2_dip.verdict;
          stats = r.Treewidth2_dip.stats;
          frames = r.Treewidth2_dip.transcript;
        });
    decision_replay = None;
  }

let entries = [ e1; e2; e3; e4; e5; e6; e7; e8 ]
let find id = List.find_opt (fun e -> String.equal e.id id) entries
let ids = List.map (fun e -> e.id) entries

(* ---- record ----------------------------------------------------------- *)

let net_transport (s : sync_run) =
  Net_protocols.transport ~name:s.protocol ~graph:s.graph ~stats:s.stats ~verdict:s.verdict

let record ?(runtime = Trace.Dip_runtime) entry ~seed =
  let s = entry.run ~seed in
  let n = Graph.n s.graph in
  let graph_digest = Trace.graph_digest s.graph in
  match runtime with
  | Trace.Dip_runtime ->
      {
        Trace.experiment = entry.id;
        protocol = s.protocol;
        runtime;
        recipe = entry.recipe;
        graph_digest;
        seed;
        n;
        stats = s.stats;
        frames = s.frames;
        verdicts = Trace.verdicts_of_verdict ~n s.verdict;
      }
  | Trace.Net_runtime ->
      let proto = net_transport s in
      let res = Net.execute ~rng:(Rng.create seed) ~model:Fault.reliable proto in
      let frames =
        Array.to_list (Array.map (fun round -> (Dip.Prover_phase, round)) proto.Net.rounds)
      in
      {
        Trace.experiment = entry.id;
        protocol = s.protocol;
        runtime;
        recipe = entry.recipe;
        graph_digest;
        seed;
        n;
        stats = s.stats;
        frames;
        verdicts =
          Trace.verdicts_of_verdict ~n
            { Dip.accepted = res.Net.accepted; rejecting = res.Net.rejecting };
      }

(* ---- replay ----------------------------------------------------------- *)

let same_verdict (a : Dip.verdict) (b : Dip.verdict) =
  a.Dip.accepted = b.Dip.accepted && a.Dip.rejecting = b.Dip.rejecting

let verdict_divergence ~replayed ~recorded =
  Printf.sprintf "replayed verdict diverges from the recorded one: %s vs %s"
    (if replayed.Dip.accepted then "accept" else
       "reject by " ^ String.concat "," (List.map string_of_int replayed.Dip.rejecting))
    (if recorded.Dip.accepted then "accept" else
       "reject by " ^ String.concat "," (List.map string_of_int recorded.Dip.rejecting))

let prover_rows (s : Dip.stats) =
  List.filter (fun (ph, _) -> ph = Dip.Prover_phase) s.Dip.per_phase

let replay_net entry t =
  let s = entry.run ~seed:t.Trace.seed in
  let proto = net_transport s in
  let recorded = Array.of_list t.Trace.frames in
  if Array.exists (fun (ph, _) -> ph <> Dip.Prover_phase) recorded then
    Error "a network trace must contain only prover round payloads"
  else if Array.length recorded <> Array.length proto.Net.rounds then
    Error
      (Printf.sprintf "round counts differ: trace has %d, protocol ships %d"
         (Array.length recorded) (Array.length proto.Net.rounds))
  else begin
    let bad = ref None in
    Array.iteri
      (fun r (_, arr) ->
        if !bad = None then
          if Array.length arr <> Array.length proto.Net.rounds.(r) then
            bad := Some (Printf.sprintf "round %d: label counts differ" r)
          else
            Array.iteri
              (fun v b ->
                if !bad = None && not (Bits.equal b proto.Net.rounds.(r).(v)) then
                  bad := Some (Printf.sprintf "round %d: node %d payload differs" r v))
              arr)
      recorded;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let frames = Array.map snd recorded in
        let verdict = Net.replay_check proto ~frames in
        let rec_verdict = Trace.verdict_of t in
        if not (same_verdict verdict rec_verdict) then
          Error (verdict_divergence ~replayed:verdict ~recorded:rec_verdict)
        else if
          (* every shipped payload is the per-phase envelope, so the round
             maxima must reproduce the prover rows of the recorded stats *)
          Trace.phase_maxima t.Trace.frames <> prover_rows t.Trace.stats
        then Error "per-phase bit counts do not match the recorded frames"
        else Ok { mode = "decision-only (net)"; verdict }
  end

let replay_dip entry t =
  match entry.decision_replay with
  | Some f -> (
      match f t with
      | Error e -> Error ("decision replay failed: " ^ e)
      | Ok verdict ->
          let recorded = Trace.verdict_of t in
          if not (same_verdict verdict recorded) then
            Error (verdict_divergence ~replayed:verdict ~recorded)
          else if Trace.phase_maxima t.Trace.frames <> t.Trace.stats.Dip.per_phase then
            Error "per-phase bit counts do not match the recorded frames"
          else Ok { mode = "decision-only"; verdict })
  | None -> (
      let fresh = record ~runtime:Trace.Dip_runtime entry ~seed:t.Trace.seed in
      match Trace.diff t fresh with
      | Some d -> Error ("re-execution diverges: " ^ d)
      | None -> Ok { mode = "re-execution"; verdict = Trace.verdict_of t })

let replay t =
  match find t.Trace.experiment with
  | None -> Error (Printf.sprintf "unknown experiment id %S" t.Trace.experiment)
  | Some entry ->
      if not (String.equal t.Trace.protocol entry.protocol) then
        Error
          (Printf.sprintf "trace names protocol %S but %s is %S" t.Trace.protocol entry.id
             entry.protocol)
      else if not (String.equal t.Trace.graph_digest (Trace.graph_digest (entry.instance_graph ())))
      then Error "graph digest mismatch: the registry instance is not the recorded one"
      else begin
        match t.Trace.runtime with
        | Trace.Dip_runtime -> replay_dip entry t
        | Trace.Net_runtime -> replay_net entry t
      end
