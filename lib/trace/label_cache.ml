(* Content-addressed memo table for honest-prover executions.

   A protocol run is a pure function of (protocol id, instance content,
   seed), so its (verdict, stats) pair can be cached under the SHA-256 of
   exactly those inputs.  The cache only ever returns what the closure
   would have computed — consumers stay byte-identical with the cache on
   or off; only the hit/miss counters (reported to stdout, never to the
   JSON records) reveal it was there.  The table is process-wide and
   mutex-guarded: the trial engine's worker domains share it. *)

type outcome = Dip.verdict * Dip.stats

type entry = { outcome : outcome; fill_s : float }

let table : (string, entry) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()
let hits = Atomic.make 0
let misses = Atomic.make 0
let saved = Atomic.make 0  (* microseconds, to stay in Atomic's int domain *)

let enabled () =
  match Sys.getenv_opt "DIPP_LABEL_CACHE" with Some "0" -> false | Some _ | None -> true

let key ~protocol ~instance ~seed =
  Sha256.hex (String.concat "\x00" [ protocol; instance; string_of_int seed ])

let graph_key g = Trace.graph_digest g

let lr_key (inst : Lr_sorting.instance) =
  (* the underlying graph forgets arc orientation and the path order, both
     of which the prover's labels depend on — hash the full instance *)
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "lr n=%d\npath " inst.Lr_sorting.n);
  Array.iter (fun v -> Buffer.add_string b (string_of_int v ^ ",")) inst.Lr_sorting.path;
  Buffer.add_string b "\narcs ";
  List.iter (fun (u, v) -> Buffer.add_string b (Printf.sprintf "%d>%d," u v)) inst.Lr_sorting.arcs;
  Sha256.hex (Buffer.contents b)

let find_or_run ~key f =
  if not (enabled ()) then f ()
  else begin
    Mutex.lock lock;
    let cached = Hashtbl.find_opt table key in
    Mutex.unlock lock;
    match cached with
    | Some e ->
        Atomic.incr hits;
        ignore (Atomic.fetch_and_add saved (int_of_float (e.fill_s *. 1e6)));
        e.outcome
    | None ->
        let t0 = Unix.gettimeofday () in
        let outcome = f () in
        let fill_s = Unix.gettimeofday () -. t0 in
        Mutex.lock lock;
        (* a racing domain may have filled the slot meanwhile; both computed
           the same pure value, so either write is fine *)
        Hashtbl.replace table key { outcome; fill_s };
        Mutex.unlock lock;
        Atomic.incr misses;
        outcome
  end

let stats () = (Atomic.get hits, Atomic.get misses)

let hit_rate () =
  let h, m = stats () in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let saved_s () = float_of_int (Atomic.get saved) /. 1e6

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock;
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set saved 0

let report () =
  if not (enabled ()) then "label-cache: disabled (DIPP_LABEL_CACHE=0)"
  else
    let h, m = stats () in
    Printf.sprintf "label-cache: %d hits / %d lookups (%.1f%% hit rate), ~%.2fs recompute saved" h
      (h + m)
      (100. *. hit_rate ())
      (saved_s ())
