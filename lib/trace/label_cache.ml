(* Content-addressed memo table for honest-prover executions.

   A protocol run is a pure function of (protocol id, instance content,
   seed), so its (verdict, stats) pair can be cached under the SHA-256 of
   exactly those inputs.  The cache only ever returns what the closure
   would have computed — consumers stay byte-identical with the cache on
   or off; only the hit/miss counters (reported to stdout, never to the
   JSON records) reveal it was there.  The table is process-wide and
   mutex-guarded: the trial engine's worker domains share it.

   The counters are deliberately *derived*, not event-counted.  Under
   DIPP_JOBS>1 two domains can both miss the same fresh key and both run
   the closure; per-event hit/miss increments would then depend on the
   schedule, and the stdout report would vary run to run.  Instead we
   keep one atomic lookup total and derive
     misses = distinct keys in the table, hits = lookups - misses,
   both pure functions of the work set — the report line is identical
   for every DIPP_JOBS value. *)

type outcome = Dip.verdict * Dip.stats

let table : (string, outcome) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()
let lookups = Atomic.make 0

let enabled () =
  match Sys.getenv_opt "DIPP_LABEL_CACHE" with Some "0" -> false | Some _ | None -> true

let key ~protocol ~instance ~seed =
  Sha256.hex (String.concat "\x00" [ protocol; instance; string_of_int seed ])

let graph_key g = Trace.graph_digest g

let lr_key (inst : Lr_sorting.instance) =
  (* the underlying graph forgets arc orientation and the path order, both
     of which the prover's labels depend on — hash the full instance *)
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "lr n=%d\npath " inst.Lr_sorting.n);
  Array.iter (fun v -> Buffer.add_string b (string_of_int v ^ ",")) inst.Lr_sorting.path;
  Buffer.add_string b "\narcs ";
  List.iter (fun (u, v) -> Buffer.add_string b (Printf.sprintf "%d>%d," u v)) inst.Lr_sorting.arcs;
  Sha256.hex (Buffer.contents b)

let find_or_run ~key f =
  if not (enabled ()) then f ()
  else begin
    Atomic.incr lookups;
    Mutex.lock lock;
    let cached = Hashtbl.find_opt table key in
    Mutex.unlock lock;
    match cached with
    | Some outcome -> outcome
    | None ->
        let outcome = f () in
        Mutex.lock lock;
        (* a racing domain may have filled the slot meanwhile; both computed
           the same pure value, so either write is fine — and the derived
           counters collapse the duplicate miss *)
        Hashtbl.replace table key outcome;
        Mutex.unlock lock;
        outcome
  end

let stats () =
  let l = Atomic.get lookups in
  Mutex.lock lock;
  let distinct = Hashtbl.length table in
  Mutex.unlock lock;
  let m = min distinct l in
  (l - m, m)

let hit_rate () =
  let h, m = stats () in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock;
  Atomic.set lookups 0

let report () =
  if not (enabled ()) then "label-cache: disabled (DIPP_LABEL_CACHE=0)"
  else
    let h, m = stats () in
    Printf.sprintf "label-cache: %d hits / %d lookups (%.1f%% hit rate), %d distinct key(s)" h
      (h + m)
      (100. *. hit_rate ())
      m
