(** Canonical binary proof transcripts with content-addressed digests.

    A trace records one protocol execution end to end: the header names
    the experiment family, protocol, runtime and instance recipe; the
    body carries the round-by-round label/coin frames (the retained
    {!Dip.meter} arrays, or the network runtime's per-round payloads),
    the per-node verdict bits, and the measured {!Dip.stats}.  Stats are
    stored explicitly because composite protocols (Theorems 1.3-1.7)
    merge component meters into their stats — the totals are not
    derivable from the top-level frames alone.

    File format: the ASCII magic line ["DIPP-TRACE 1"], then a
    length-prefixed big-endian binary body, then the {!digest} — a
    SHA-256 over (protocol id, graph digest, seed, frame bytes).
    {!of_file} recomputes the digest and rejects any mismatch, so
    tampering with a frame fails at load time, not at replay time. *)

type runtime = Dip_runtime | Net_runtime

type frame = Dip.phase * Bits.t array
(** One round: the label (P) or coin (V) assigned to every node; for
    network traces every frame is a prover round payload. *)

type t = {
  experiment : string;  (** corpus family id, e.g. ["E3"] *)
  protocol : string;  (** protocol id, e.g. ["path_outerplanarity"] *)
  runtime : runtime;
  recipe : string;  (** human-readable instance recipe, e.g. ["lr_yes n=128 gseed=42"] *)
  graph_digest : string;  (** {!graph_digest} of the instance graph *)
  seed : int;  (** the protocol run seed *)
  n : int;
  stats : Dip.stats;
  frames : frame list;
  verdicts : bool array;  (** per-node accept bit *)
}

val version : int

val graph_digest : Graph.t -> string
(** SHA-256 hex of {!Graph_io.to_edge_list}'s canonical text. *)

val digest : t -> string
(** Content address: SHA-256 hex over (protocol, graph digest, seed,
    serialized frames). *)

val verdict_of : t -> Dip.verdict
val verdicts_of_verdict : n:int -> Dip.verdict -> bool array

val phase_maxima : frame list -> (Dip.phase * int) list
(** Per round, the largest label in the frame (bits) — comparable to
    {!Dip.stats.per_phase} for protocols whose stats come from the same
    meter that retained the frames. *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Invalid_argument] on bad magic, truncation, trailing bytes,
    malformed fields, or a digest mismatch. *)

val to_file : string -> t -> unit
val of_file : string -> t
(** Like {!of_string}; errors carry the path. *)

val diff : t -> t -> string option
(** [None] iff byte-equivalent; otherwise the first divergence (header
    field, stats column, frame round/node, or verdict bit). *)

val equal : t -> t -> bool

val runtime_name : runtime -> string
val summary : t -> string
(** One line: family, protocol, runtime, n, seed, rounds, verdict, short
    digest. *)
