(** Content-addressed honest-prover label cache.

    Memoizes a protocol execution's [(verdict, stats)] under the SHA-256
    of (protocol id, canonical instance content, seed).  Since a run is a
    pure function of exactly those inputs, a hit returns what the closure
    would have computed: every consumer (the trial engine, the fault
    sweep) emits byte-identical reports with the cache on or off.  Hit
    statistics are reported to stdout only, never written into the JSON
    records (ANALYSIS.md determinism contract) — and they are {e derived}
    (hits = lookups − distinct keys) rather than event-counted, so the
    stdout report is itself deterministic w.r.t. [DIPP_JOBS]: a racing
    duplicate miss does not skew the counts.

    [DIPP_LABEL_CACHE=0] disables the cache (every lookup runs the
    closure and nothing is stored).  The table is process-wide and safe
    to share across the engine's worker domains. *)

val enabled : unit -> bool

val key : protocol:string -> instance:string -> seed:int -> string
(** The content address.  [instance] must determine every input the
    prover and verifier read besides the seed — use {!graph_key} /
    {!lr_key} or compose them with witness material. *)

val graph_key : Graph.t -> string
(** {!Trace.graph_digest}: canonical-edge-list SHA-256. *)

val lr_key : Lr_sorting.instance -> string
(** Hashes n, the full path order, and the directed arc list — the
    underlying undirected graph alone would conflate instances that
    differ only in arc orientation. *)

val find_or_run : key:string -> (unit -> Dip.verdict * Dip.stats) -> Dip.verdict * Dip.stats
(** Returns the cached outcome or runs the closure and stores it.  When
    the cache is disabled, always runs the closure. *)

val stats : unit -> int * int
(** [(hits, misses)] since the last {!reset}, derived as
    [(lookups - distinct, distinct)] where [distinct] is the number of
    keys in the table — a pure function of the work set, independent of
    how lookups interleaved across domains. *)

val hit_rate : unit -> float

val reset : unit -> unit

val report : unit -> string
(** One stdout-ready line: hits/lookups, hit rate, distinct key count
    (or a note that the cache is disabled). *)
