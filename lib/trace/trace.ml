(* Canonical binary proof transcripts.

   A trace is the full public record of one protocol execution: the
   round-by-round label/coin frames the meter retained, the per-node
   verdict bits, and the measured stats (stored explicitly — composite
   protocols merge component meters into their stats, so the numbers are
   not derivable from the top-level frames alone).  The on-disk form is a
   one-line ASCII magic header followed by a length-prefixed binary body,
   closed by a content digest over (protocol id, graph digest, seed,
   frame bytes); the loader recomputes the digest, so a flipped byte
   anywhere in the frames fails loudly instead of replaying quietly. *)

type runtime = Dip_runtime | Net_runtime

type frame = Dip.phase * Bits.t array

type t = {
  experiment : string;
  protocol : string;
  runtime : runtime;
  recipe : string;
  graph_digest : string;
  seed : int;
  n : int;
  stats : Dip.stats;
  frames : frame list;
  verdicts : bool array;
}

let version = 1
let magic = Printf.sprintf "DIPP-TRACE %d\n" version

let runtime_name = function Dip_runtime -> "dip" | Net_runtime -> "net"

let graph_digest g = Sha256.hex (Graph_io.to_edge_list g)

let verdict_of t =
  let rejecting = ref [] in
  for v = Array.length t.verdicts - 1 downto 0 do
    if not t.verdicts.(v) then rejecting := v :: !rejecting
  done;
  { Dip.accepted = List.is_empty !rejecting; rejecting = !rejecting }

let verdicts_of_verdict ~n (v : Dip.verdict) =
  let a = Array.make n true in
  List.iter (fun r -> if r >= 0 && r < n then a.(r) <- false) v.Dip.rejecting;
  a

let phase_maxima frames =
  List.map
    (fun (ph, arr) -> (ph, Array.fold_left (fun m b -> max m (Bits.length b)) 0 arr))
    frames

(* ---- binary body ----------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let put_u32 b v =
  if v < 0 then invalid_arg "Trace: negative length";
  Buffer.add_int32_be b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_phase b = function Dip.Prover_phase -> put_u8 b 0 | Dip.Verifier_phase -> put_u8 b 1

let put_bits b bits =
  put_u32 b (Bits.length bits);
  Buffer.add_bytes b (Bits.to_bytes bits)

let put_frame b (ph, arr) =
  put_phase b ph;
  put_u32 b (Array.length arr);
  Array.iter (put_bits b) arr

let frame_bytes frames =
  let b = Buffer.create 1024 in
  put_u32 b (List.length frames);
  List.iter (put_frame b) frames;
  Buffer.contents b

let digest t =
  Sha256.hex
    (String.concat "\n"
       [ t.protocol; t.graph_digest; string_of_int t.seed; frame_bytes t.frames ])

let put_stats b (s : Dip.stats) =
  put_u32 b s.Dip.interaction_rounds;
  put_u32 b s.Dip.proof_size_bits;
  put_u32 b s.Dip.max_node_total_bits;
  put_i64 b s.Dip.total_prover_bits;
  put_i64 b s.Dip.total_verifier_bits;
  put_u32 b (List.length s.Dip.phases);
  List.iter (put_phase b) s.Dip.phases;
  put_u32 b (List.length s.Dip.per_phase);
  List.iter
    (fun (ph, bits) ->
      put_phase b ph;
      put_u32 b bits)
    s.Dip.per_phase

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_str b t.experiment;
  put_str b t.protocol;
  put_u8 b (match t.runtime with Dip_runtime -> 0 | Net_runtime -> 1);
  put_str b t.recipe;
  put_str b t.graph_digest;
  put_i64 b t.seed;
  put_u32 b t.n;
  put_stats b t.stats;
  Buffer.add_string b (frame_bytes t.frames);
  put_u32 b (Array.length t.verdicts);
  Array.iter (fun v -> put_u8 b (if v then 1 else 0)) t.verdicts;
  put_str b (digest t);
  Buffer.contents b

(* ---- parsing --------------------------------------------------------- *)

let fail fmt = Printf.ksprintf invalid_arg ("Trace: " ^^ fmt)

type cursor = { src : string; mutable pos : int }

let need c k = if c.pos + k > String.length c.src then fail "truncated file"

let get_u8 c =
  need c 1;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.src c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then fail "negative length field";
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.src c.pos) in
  c.pos <- c.pos + 8;
  v

let get_str c =
  let len = get_u32 c in
  need c len;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s

let get_phase c =
  match get_u8 c with
  | 0 -> Dip.Prover_phase
  | 1 -> Dip.Verifier_phase
  | k -> fail "bad phase tag %d" k

let get_bits c =
  let len = get_u32 c in
  let nbytes = (len + 7) / 8 in
  need c nbytes;
  let data = Bytes.of_string (String.sub c.src c.pos nbytes) in
  c.pos <- c.pos + nbytes;
  Bits.of_bytes ~len data

(* Array.init/List.init do not promise left-to-right evaluation, which a
   stateful cursor needs — read sequentially and assemble after. *)
let read_seq k f =
  let rec go i acc = if i = k then List.rev acc else go (i + 1) (f () :: acc) in
  go 0 []

let get_frame c =
  let ph = get_phase c in
  let k = get_u32 c in
  (ph, Array.of_list (read_seq k (fun () -> get_bits c)))

let get_frames c =
  let k = get_u32 c in
  read_seq k (fun () -> get_frame c)

let get_stats c =
  let interaction_rounds = get_u32 c in
  let proof_size_bits = get_u32 c in
  let max_node_total_bits = get_u32 c in
  let total_prover_bits = get_i64 c in
  let total_verifier_bits = get_i64 c in
  let np = get_u32 c in
  let phases = read_seq np (fun () -> get_phase c) in
  let npp = get_u32 c in
  let per_phase =
    read_seq npp (fun () ->
        let ph = get_phase c in
        let bits = get_u32 c in
        (ph, bits))
  in
  {
    Dip.interaction_rounds;
    proof_size_bits;
    max_node_total_bits;
    total_prover_bits;
    total_verifier_bits;
    phases;
    per_phase;
  }

let of_string s =
  let ml = String.length magic in
  if String.length s < ml || String.sub s 0 ml <> magic then
    fail "bad magic (not a %S file)" (String.trim magic);
  let c = { src = s; pos = ml } in
  let experiment = get_str c in
  let protocol = get_str c in
  let runtime =
    match get_u8 c with 0 -> Dip_runtime | 1 -> Net_runtime | k -> fail "bad runtime tag %d" k
  in
  let recipe = get_str c in
  let graph_digest = get_str c in
  let seed = get_i64 c in
  let n = get_u32 c in
  let stats = get_stats c in
  let frames = get_frames c in
  let nv = get_u32 c in
  let verdicts = Array.of_list (read_seq nv (fun () -> get_u8 c <> 0)) in
  let stored = get_str c in
  if c.pos <> String.length s then fail "%d trailing bytes" (String.length s - c.pos);
  let t = { experiment; protocol; runtime; recipe; graph_digest; seed; n; stats; frames; verdicts } in
  let actual = digest t in
  if not (String.equal stored actual) then
    fail "digest mismatch (stored %s..., recomputed %s...): file corrupted or tampered"
      (String.sub stored 0 12) (String.sub actual 0 12);
  t

let to_file path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (to_string t))

let of_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  try of_string s with Invalid_argument msg -> invalid_arg (path ^ ": " ^ msg)

(* ---- structural diff -------------------------------------------------- *)

let phase_letter = function Dip.Prover_phase -> "P" | Dip.Verifier_phase -> "V"

let diff_stats (a : Dip.stats) (b : Dip.stats) =
  if a.Dip.interaction_rounds <> b.Dip.interaction_rounds then
    Some
      (Printf.sprintf "interaction rounds differ: %d vs %d" a.Dip.interaction_rounds
         b.Dip.interaction_rounds)
  else if a.Dip.proof_size_bits <> b.Dip.proof_size_bits then
    Some (Printf.sprintf "proof size differs: %d vs %d bits" a.Dip.proof_size_bits b.Dip.proof_size_bits)
  else if a.Dip.max_node_total_bits <> b.Dip.max_node_total_bits then
    Some
      (Printf.sprintf "max node total differs: %d vs %d bits" a.Dip.max_node_total_bits
         b.Dip.max_node_total_bits)
  else if a.Dip.total_prover_bits <> b.Dip.total_prover_bits then
    Some
      (Printf.sprintf "total prover bits differ: %d vs %d" a.Dip.total_prover_bits
         b.Dip.total_prover_bits)
  else if a.Dip.total_verifier_bits <> b.Dip.total_verifier_bits then
    Some
      (Printf.sprintf "total verifier bits differ: %d vs %d" a.Dip.total_verifier_bits
         b.Dip.total_verifier_bits)
  else if a.Dip.phases <> b.Dip.phases then Some "phase schedules differ"
  else if a.Dip.per_phase <> b.Dip.per_phase then
    Some
      (Printf.sprintf "per-phase maxima differ: [%s] vs [%s]"
         (String.concat " " (List.map (fun (p, x) -> phase_letter p ^ string_of_int x) a.Dip.per_phase))
         (String.concat " " (List.map (fun (p, x) -> phase_letter p ^ string_of_int x) b.Dip.per_phase)))
  else None

let diff_frames fa fb =
  if List.length fa <> List.length fb then
    Some (Printf.sprintf "frame counts differ: %d vs %d rounds" (List.length fa) (List.length fb))
  else
    let rec go r = function
      | [], [] -> None
      | (pa, aa) :: ra, (pb, ab) :: rb ->
          if pa <> pb then
            Some
              (Printf.sprintf "round %d: phase differs (%s vs %s)" r (phase_letter pa)
                 (phase_letter pb))
          else if Array.length aa <> Array.length ab then
            Some
              (Printf.sprintf "round %d (%s): label counts differ (%d vs %d)" r (phase_letter pa)
                 (Array.length aa) (Array.length ab))
          else begin
            let bad = ref None in
            Array.iteri
              (fun v la ->
                if !bad = None && not (Bits.equal la ab.(v)) then
                  bad :=
                    Some
                      (Printf.sprintf "round %d (%s): node %d label differs (%d vs %d bits)" r
                         (phase_letter pa) v (Bits.length la) (Bits.length ab.(v))))
              aa;
            match !bad with None -> go (r + 1) (ra, rb) | some -> some
          end
      | _ -> assert false
    in
    go 0 (fa, fb)

let diff a b =
  let field name pr va vb = if va = vb then None else Some (Printf.sprintf "%s differs: %s vs %s" name (pr va) (pr vb)) in
  let ( <|> ) x y = match x with Some _ -> x | None -> y () in
  field "experiment" Fun.id a.experiment b.experiment
  <|> fun () ->
  field "protocol" Fun.id a.protocol b.protocol
  <|> fun () ->
  field "runtime" Fun.id (runtime_name a.runtime) (runtime_name b.runtime)
  <|> fun () ->
  field "graph digest" Fun.id a.graph_digest b.graph_digest
  <|> fun () ->
  field "seed" string_of_int a.seed b.seed
  <|> fun () ->
  field "n" string_of_int a.n b.n
  <|> fun () ->
  diff_stats a.stats b.stats
  <|> fun () ->
  diff_frames a.frames b.frames
  <|> fun () ->
  if a.verdicts <> b.verdicts then begin
    let k = ref (-1) in
    Array.iteri (fun v x -> if !k < 0 && (v >= Array.length b.verdicts || x <> b.verdicts.(v)) then k := v) a.verdicts;
    Some
      (if Array.length a.verdicts <> Array.length b.verdicts then
         Printf.sprintf "verdict counts differ: %d vs %d nodes" (Array.length a.verdicts)
           (Array.length b.verdicts)
       else Printf.sprintf "verdict differs at node %d: %b vs %b" !k a.verdicts.(!k) b.verdicts.(!k))
  end
  else None

let equal a b = diff a b = None

let summary t =
  Printf.sprintf "%s %s [%s] n=%d seed=%d rounds=%d frames=%d verdict=%s digest=%s" t.experiment
    t.protocol (runtime_name t.runtime) t.n t.seed t.stats.Dip.interaction_rounds
    (List.length t.frames)
    (if (verdict_of t).Dip.accepted then "accept" else "reject")
    (String.sub (digest t) 0 12)
