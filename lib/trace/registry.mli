(** The transcript corpus registry: pinned honest instances E1-E8 with
    record and replay on both runtimes.

    Each entry pins one instance by generator constants (independent of
    the run seed), so a {!Trace.t} is self-describing: its experiment id
    picks the entry (hence the instance), its seed re-drives the coins.

    Replay modes:
    - {e decision-only} — only the per-node decision functions re-run
      against the recorded frames: LR-sorting traces (E1/E2) through the
      protocol's strict label decoders, and every network trace through
      {!Net.replay_check};
    - {e re-execution} — composite protocols (E3-E8) on the synchronous
      runtime re-run deterministically from the recorded seed and the
      fresh trace is byte-diffed against the recorded one.

    Every replay first checks the graph digest (the registry instance
    must be the recorded one) and finishes by checking the recorded
    per-phase bit counts against the frames. *)

type sync_run = {
  protocol : string;
  graph : Graph.t;
  verdict : Dip.verdict;
  stats : Dip.stats;
  frames : Trace.frame list;
}

type entry = {
  id : string;  (** experiment id, ["E1"].."E8"] *)
  protocol : string;
  recipe : string;
  instance_graph : unit -> Graph.t;
  run : seed:int -> sync_run;  (** honest retained run on the pinned instance *)
  decision_replay : (Trace.t -> (Dip.verdict, string) Stdlib.result) option;
}

type replay_report = { mode : string; verdict : Dip.verdict }

val entries : entry list
val ids : string list
val find : string -> entry option

val record : ?runtime:Trace.runtime -> entry -> seed:int -> Trace.t
(** Runs the entry's pinned instance honestly with [seed] and packages
    the transcript.  [Net_runtime] ships the run over the reliable
    network (checksummed transport) and records the per-round payloads
    and the network verdict. *)

val replay : Trace.t -> (replay_report, string) Stdlib.result
(** Replays a trace against the registry.  [Ok] means the replayed
    verdict, the frames, and the per-phase bit counts all match the
    recording byte for byte; [Error] names the first divergence. *)
